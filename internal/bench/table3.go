package bench

import (
	"fmt"
	"strings"

	"masc/internal/workload"
)

// Table3Cell holds one (dataset, codec) measurement of the paper's Table 3.
// The *RateMBps fields are the derived throughputs (raw MB per second of
// codec time); their names carry "Rate" so the -baseline regression gate
// treats them as higher-is-better metrics.
type Table3Cell struct {
	Dataset        string
	Codec          string
	CR             float64
	CompSec        float64
	DecompSec      float64
	CompRateMBps   float64
	DecompRateMBps float64
}

// RunTable3 measures every codec over every dataset. Each dataset is
// simulated once; all codecs compress the same captured tensor.
func RunTable3(names []string, codecs []string, scale float64, workers int) ([]Table3Cell, error) {
	if names == nil {
		names = workload.Table2Names()
	}
	if codecs == nil {
		codecs = CodecNames()
	}
	var cells []Table3Cell
	for _, name := range names {
		ds, err := workload.Build(name, scale)
		if err != nil {
			return nil, err
		}
		tn, err := CaptureTensor(ds)
		if err != nil {
			return nil, err
		}
		more, err := MeasureAllCodecs(tn, codecs, workers)
		if err != nil {
			return nil, err
		}
		cells = append(cells, more...)
	}
	return cells, nil
}

// MeasureAllCodecs runs the named codecs (CodecNames() if nil) over one
// tensor — the single-dataset slice of Table 3 used by masc-compress.
func MeasureAllCodecs(tn *Tensor, codecs []string, workers int) ([]Table3Cell, error) {
	if codecs == nil {
		codecs = CodecNames()
	}
	cells := make([]Table3Cell, 0, len(codecs))
	for _, cn := range codecs {
		pair, err := NewCodecPair(cn, tn, workers, false)
		if err != nil {
			return nil, err
		}
		r, err := MeasureCodec(pair, tn)
		if err != nil {
			return nil, err
		}
		cells = append(cells, Table3Cell{
			Dataset:        tn.Name,
			Codec:          cn,
			CR:             r.CR,
			CompSec:        r.CompressTime.Seconds(),
			DecompSec:      r.DecompressTime.Seconds(),
			CompRateMBps:   r.CompressMBps,
			DecompRateMBps: r.DecompressMBps,
		})
	}
	return cells, nil
}

// FormatTable3 renders the dataset×codec grid, one dataset block per line
// group, plus per-codec averages (the paper's bottom row).
func FormatTable3(cells []Table3Cell) string {
	var datasets, codecs []string
	seenD := map[string]bool{}
	seenC := map[string]bool{}
	cell := map[string]Table3Cell{}
	for _, c := range cells {
		if !seenD[c.Dataset] {
			seenD[c.Dataset] = true
			datasets = append(datasets, c.Dataset)
		}
		if !seenC[c.Codec] {
			seenC[c.Codec] = true
			codecs = append(codecs, c.Codec)
		}
		cell[c.Dataset+"\x00"+c.Codec] = c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "Dataset")
	for _, cn := range codecs {
		fmt.Fprintf(&b, " | %-40s", cn+" CR/Tc/Td/Rc/Rd")
	}
	b.WriteString("\n")
	sums := map[string][5]float64{}
	for _, dn := range datasets {
		fmt.Fprintf(&b, "%-10s", dn)
		for _, cn := range codecs {
			c := cell[dn+"\x00"+cn]
			fmt.Fprintf(&b, " | %7.2f %7.3fs %7.3fs %6.1f %6.1f MB/s",
				c.CR, c.CompSec, c.DecompSec, c.CompRateMBps, c.DecompRateMBps)
			s := sums[cn]
			s[0] += c.CR
			s[1] += c.CompSec
			s[2] += c.DecompSec
			s[3] += c.CompRateMBps
			s[4] += c.DecompRateMBps
			sums[cn] = s
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-10s", "Average")
	n := float64(len(datasets))
	for _, cn := range codecs {
		s := sums[cn]
		fmt.Fprintf(&b, " | %7.2f %7.3fs %7.3fs %6.1f %6.1f MB/s",
			s[0]/n, s[1]/n, s[2]/n, s[3]/n, s[4]/n)
	}
	b.WriteString("\n")
	return b.String()
}

// AblationRow measures a MASC design-choice ablation on one dataset.
type AblationRow struct {
	Dataset string
	Variant string
	CR      float64
	CompSec float64
}

// ablationVariants maps variant names to masczip option mutations; they are
// applied through NewCodecPair-compatible construction below.
var ablationVariants = []string{
	"full", "markov", "no-stamp", "no-lastvalue", "no-shared-window", "temporal-only(chimp)",
}

// RunAblation measures the contribution of each MASC design choice.
func RunAblation(names []string, scale float64) ([]AblationRow, error) {
	if names == nil {
		names = []string{"add20", "smult20", "MOS_T5"}
	}
	var rows []AblationRow
	for _, name := range names {
		ds, err := workload.Build(name, scale)
		if err != nil {
			return nil, err
		}
		tn, err := CaptureTensor(ds)
		if err != nil {
			return nil, err
		}
		for _, v := range ablationVariants {
			pair, err := ablationPair(v, tn)
			if err != nil {
				return nil, err
			}
			r, err := MeasureCodec(pair, tn)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Dataset: name,
				Variant: v,
				CR:      r.CR,
				CompSec: r.CompressTime.Seconds(),
			})
		}
	}
	return rows, nil
}

// FormatAblation renders the ablation grid.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-22s %8s %10s\n", "Dataset", "Variant", "CR", "Tcomp")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-22s %8.2f %9.3fs\n", r.Dataset, r.Variant, r.CR, r.CompSec)
	}
	return b.String()
}
