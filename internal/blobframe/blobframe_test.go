package blobframe

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range payloads {
		f := Wrap('J', 7, p)
		got, err := Open(f, 'J', 7)
		if err != nil {
			t.Fatalf("Open(%d bytes): %v", len(p), err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("payload mismatch: %q vs %q", got, p)
		}
	}
}

func TestSealMatchesWrap(t *testing.T) {
	payload := []byte("payload bytes")
	frame := make([]byte, HeaderSize, HeaderSize+len(payload))
	frame = append(frame, payload...)
	Seal(frame, 'C', 3)
	if !bytes.Equal(frame, Wrap('C', 3, payload)) {
		t.Fatal("Seal and Wrap disagree")
	}
}

// TestEveryBitFlipDetected is the core integrity guarantee: flipping any
// single bit anywhere in the frame — header or payload — must fail Open.
func TestEveryBitFlipDetected(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	f := Wrap('J', 12, payload)
	for byteIdx := range f {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), f...)
			mut[byteIdx] ^= 1 << bit
			if _, err := Open(mut, 'J', 12); err == nil {
				t.Fatalf("bit flip at byte %d bit %d went undetected", byteIdx, bit)
			}
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	f := Wrap('J', 0, bytes.Repeat([]byte{7}, 100))
	for cut := 1; cut < len(f); cut += 7 {
		if _, err := Open(f[:len(f)-cut], 'J', 0); err == nil {
			t.Fatalf("truncation by %d bytes went undetected", cut)
		}
	}
	if _, err := Open(nil, 'J', 0); err == nil {
		t.Fatal("empty frame accepted")
	}
}

func TestKindAndStepMismatch(t *testing.T) {
	f := Wrap('J', 5, []byte("x"))
	if _, err := Open(f, 'C', 5); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if _, err := Open(f, 'J', 6); err == nil {
		t.Fatal("step mismatch accepted")
	}
	var fe *Error
	_, err := Open(f, 'J', 6)
	if !errorsAs(err, &fe) || fe.Step != 6 {
		t.Fatalf("error does not name the expected step: %v", err)
	}
}

// errorsAs avoids importing errors just for one assertion.
func errorsAs(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestFloat64Bytes(t *testing.T) {
	if Float64Bytes(nil) != nil {
		t.Fatal("nil slice must view as nil")
	}
	v := []float64{1.5, -2.25, math.Pi}
	b := Float64Bytes(v)
	if len(b) != 24 {
		t.Fatalf("len = %d, want 24", len(b))
	}
	sum := ChecksumFloat64(v)
	FlipBit(v, 1, 17)
	if ChecksumFloat64(v) == sum {
		t.Fatal("checksum unchanged after bit flip")
	}
	FlipBit(v, 1, 17)
	if ChecksumFloat64(v) != sum {
		t.Fatal("checksum not restored after flipping the bit back")
	}
}

func TestChecksumFloat64MatchesEncoded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 257)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	// The unsafe view must checksum the same bytes a little-endian encode
	// produces (this test pins the assumption on the architectures CI runs).
	enc := make([]byte, 8*len(v))
	for i, x := range v {
		bits := math.Float64bits(x)
		for k := 0; k < 8; k++ {
			enc[8*i+k] = byte(bits >> (8 * k))
		}
	}
	if Checksum(enc) != ChecksumFloat64(v) {
		t.Skip("big-endian host: in-memory checksum differs from LE encoding (view is still self-consistent)")
	}
}
