// Package blobframe frames stored Jacobian blobs with a small versioned
// header and a CRC32C (Castagnoli) checksum, so every byte a store hands
// back during the reverse sweep is integrity-checked before it is decoded.
// A flipped bit, a truncated write, or a record read back at the wrong
// offset surfaces as a verification error instead of silently corrupt
// sensitivities.
//
// Frame layout (little-endian, HeaderSize bytes then the payload):
//
//	offset 0  u16  magic 0xB10B
//	offset 2  u8   version (currently 1)
//	offset 3  u8   kind — caller-defined tag ('J', 'C', …)
//	offset 4  u32  step the payload belongs to
//	offset 8  u32  payload length in bytes
//	offset 12 u32  CRC32C of the payload
//	offset 16      payload
//
// The header fields are themselves covered by the verification: magic,
// version, kind and step are checked against the caller's expectation and
// the recorded length against the actual frame size, so a bit flip
// anywhere in the frame — header or payload — is detected.
package blobframe

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"unsafe"
)

const (
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 16
	// Version is the current frame format version.
	Version = 1

	magic = 0xB10B
)

// castagnoli uses the CRC32C polynomial, hardware-accelerated on amd64 and
// arm64 — the same checksum storage systems (ext4, Snappy, gRPC) use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of p.
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// Error describes a frame verification failure.
type Error struct {
	Step   int
	Kind   byte
	Reason string
}

func (e *Error) Error() string {
	return fmt.Sprintf("blobframe: step %d kind %q: %s", e.Step, e.Kind, e.Reason)
}

// Seal writes the header for the payload frame[HeaderSize:] into
// frame[:HeaderSize] in place. The frame must have been assembled with
// HeaderSize bytes reserved at the front (e.g. by passing a dst of
// make([]byte, HeaderSize, …) to a Compressor).
func Seal(frame []byte, kind byte, step int) {
	payload := frame[HeaderSize:]
	binary.LittleEndian.PutUint16(frame[0:], magic)
	frame[2] = Version
	frame[3] = kind
	binary.LittleEndian.PutUint32(frame[4:], uint32(step))
	binary.LittleEndian.PutUint32(frame[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[12:], Checksum(payload))
}

// Wrap allocates a new frame around payload.
func Wrap(kind byte, step int, payload []byte) []byte {
	frame := make([]byte, HeaderSize+len(payload))
	copy(frame[HeaderSize:], payload)
	Seal(frame, kind, step)
	return frame
}

// Open verifies a frame against the expected kind and step and returns the
// payload, aliasing frame's backing array. Every failure mode — short
// frame, wrong magic/version/kind/step, length mismatch, checksum mismatch
// — returns a *Error naming the step.
func Open(frame []byte, kind byte, step int) ([]byte, error) {
	fail := func(reason string) ([]byte, error) {
		return nil, &Error{Step: step, Kind: kind, Reason: reason}
	}
	if len(frame) < HeaderSize {
		return fail(fmt.Sprintf("frame truncated to %d bytes (header is %d)", len(frame), HeaderSize))
	}
	if m := binary.LittleEndian.Uint16(frame[0:]); m != magic {
		return fail(fmt.Sprintf("bad magic %#04x", m))
	}
	if v := frame[2]; v != Version {
		return fail(fmt.Sprintf("unsupported version %d", v))
	}
	if k := frame[3]; k != kind {
		return fail(fmt.Sprintf("kind %q, want %q", k, kind))
	}
	if s := binary.LittleEndian.Uint32(frame[4:]); int(s) != step {
		return fail(fmt.Sprintf("frame records step %d", s))
	}
	n := binary.LittleEndian.Uint32(frame[8:])
	if int(n) != len(frame)-HeaderSize {
		return fail(fmt.Sprintf("payload length %d, frame holds %d", n, len(frame)-HeaderSize))
	}
	payload := frame[HeaderSize:]
	if want, got := binary.LittleEndian.Uint32(frame[12:]), Checksum(payload); got != want {
		return fail(fmt.Sprintf("checksum %#08x, want %#08x", got, want))
	}
	return payload, nil
}

// Peek decodes just the header of a frame prefix without verifying the
// payload: it returns the kind, step and payload length recorded in the
// header, validating only magic, version and that the header is complete.
// Sequential scanners (the run journal's recovery pass) use it to find the
// next frame boundary before reading and Open-ing the full frame.
func Peek(header []byte) (kind byte, step int, payloadLen int, err error) {
	if len(header) < HeaderSize {
		return 0, 0, 0, &Error{Step: -1, Kind: 0,
			Reason: fmt.Sprintf("header truncated to %d bytes (need %d)", len(header), HeaderSize)}
	}
	if m := binary.LittleEndian.Uint16(header[0:]); m != magic {
		return 0, 0, 0, &Error{Step: -1, Kind: header[3],
			Reason: fmt.Sprintf("bad magic %#04x", m)}
	}
	if v := header[2]; v != Version {
		return 0, 0, 0, &Error{Step: -1, Kind: header[3],
			Reason: fmt.Sprintf("unsupported version %d", v)}
	}
	kind = header[3]
	step = int(binary.LittleEndian.Uint32(header[4:]))
	payloadLen = int(binary.LittleEndian.Uint32(header[8:]))
	return kind, step, payloadLen, nil
}

// Float64Bytes returns v's backing array viewed as bytes, without copying.
// Used to checksum raw float64 tensors (in-memory store) at memory
// bandwidth; the view is only meaningful within one process, which is
// exactly the lifetime of an in-memory blob.
func Float64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
}

// ChecksumFloat64 is Checksum over v's in-memory byte representation.
func ChecksumFloat64(v []float64) uint32 { return Checksum(Float64Bytes(v)) }

// FlipBit flips one bit of v[i] — a test/fault-injection helper that keeps
// the bit-twiddling next to the checksum it is meant to defeat.
func FlipBit(v []float64, i int, bit uint) {
	v[i] = math.Float64frombits(math.Float64bits(v[i]) ^ (1 << (bit & 63)))
}
