package lu

import (
	"math"

	"masc/internal/sparse"
)

// SolveRefined solves A·x = b with up to maxIter steps of iterative
// refinement: after the factored solve, the true residual r = b − A·x is
// computed with the original matrix and a correction solve is applied
// while it keeps shrinking. It returns the final residual ∞-norm. The
// factors must have been computed from a (and remain paired with it).
func (f *LU) SolveRefined(a *sparse.Matrix, b []float64, maxIter int) float64 {
	n := f.n
	x := make([]float64, n)
	copy(x, b)
	f.Solve(x)
	r := make([]float64, n)
	ax := make([]float64, n)
	best := make([]float64, n)
	bestRes := math.Inf(1)
	resNorm := func() float64 {
		a.MulVec(x, ax)
		worst := 0.0
		for i := 0; i < n; i++ {
			r[i] = b[i] - ax[i]
			if v := math.Abs(r[i]); v > worst {
				worst = v
			}
		}
		return worst
	}
	for iter := 0; iter <= maxIter; iter++ {
		worst := resNorm()
		if worst < bestRes {
			bestRes = worst
			copy(best, x)
		} else {
			// At the conditioning floor corrections start to wander;
			// keep the best iterate seen.
			break
		}
		if worst == 0 || iter == maxIter {
			break
		}
		f.Solve(r)
		for i := 0; i < n; i++ {
			x[i] += r[i]
		}
	}
	copy(b, best)
	return bestRes
}

// CondEstimate returns a lower-bound estimate of the 1-norm condition
// number κ₁(A) = ‖A‖₁·‖A⁻¹‖₁ using Hager's algorithm (the LAPACK xGECON
// approach) driven by the existing factored solves.
func (f *LU) CondEstimate(a *sparse.Matrix) float64 {
	n := f.n
	if n == 0 {
		return 0
	}
	// ‖A‖₁: maximum absolute column sum.
	colSum := make([]float64, n)
	p := a.P
	for i := int32(0); i < int32(p.N); i++ {
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			colSum[p.ColIdx[k]] += math.Abs(a.Val[k])
		}
	}
	norm1 := 0.0
	for _, s := range colSum {
		if s > norm1 {
			norm1 = s
		}
	}

	// Hager iteration for ‖A⁻¹‖₁.
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	est := 0.0
	for iter := 0; iter < 5; iter++ {
		f.Solve(x) // x ← A⁻¹x
		sum := 0.0
		for _, v := range x {
			sum += math.Abs(v)
		}
		est = sum
		// ξ = sign(x); solve Aᵀz = ξ.
		for i := range x {
			if x[i] >= 0 {
				x[i] = 1
			} else {
				x[i] = -1
			}
		}
		f.SolveT(x)
		// j = argmax |z|; if |z_j| ≤ zᵀ·(previous x) we have converged.
		best, bi := 0.0, 0
		for i, v := range x {
			if a := math.Abs(v); a > best {
				best = a
				bi = i
			}
		}
		if best <= est/float64(n)*1.0000001 && iter > 0 {
			break
		}
		for i := range x {
			x[i] = 0
		}
		x[bi] = 1
	}
	return norm1 * est
}
