// Package lu implements a sparse LU factorization for the MNA systems the
// simulator solves at every Newton iteration. The algorithm is left-looking
// Gilbert–Peierls with threshold partial pivoting. Because every Jacobian of
// a transient run shares one sparsity pattern, the factorization records its
// symbolic structure (reach sets, pivot order, fill pattern) once and
// subsequent matrices are refactorized numerically in-place, which is where
// the simulator spends most of its solve time.
package lu

import (
	"errors"
	"fmt"
	"math"

	"masc/internal/sparse"
)

// ErrSingular is returned when no acceptable pivot exists for a column.
var ErrSingular = errors.New("lu: matrix is numerically singular")

// ErrPivotDegraded is returned by Refactor when the recorded pivot order has
// become numerically unusable; the caller should Factor afresh.
var ErrPivotDegraded = errors.New("lu: recorded pivot order degraded, refactor from scratch")

// refactorGrowthLimit bounds the L-entry magnitude Refactor accepts before
// declaring the recorded pivot order degraded. A fresh factorization with the
// default threshold τ=0.1 keeps |L| ≤ 10; letting reuse drift three decades
// beyond that trades at most ~4 digits for refactorization speed. Past it the
// pivot has genuinely collapsed — e.g. refactoring a DC Jacobian (diagonal
// gmin ≈ 1e-12 on capacitor-only nodes) with pivots recorded for a transient
// Jacobian (diagonal C/h) — and silent acceptance poisons every subsequent
// solve at far above roundoff.
const refactorGrowthLimit = 1e4

// Options configures a factorization.
type Options struct {
	// PivotThreshold τ ∈ (0,1]: the structurally "diagonal" row is kept as
	// pivot if its magnitude is at least τ times the column maximum.
	// Smaller values preserve the diagonal (and hence sparsity) more
	// aggressively. Zero means the default 0.1.
	PivotThreshold float64
	// ColPerm is a fill-reducing column pre-ordering: column j of the
	// factorization is original column ColPerm[j]. Nil means natural order.
	ColPerm []int32
}

// LU holds both factors and the recorded symbolic structure.
type LU struct {
	n    int
	pat  *sparse.Pattern
	tau  float64
	q    []int32 // column order: factor col j == original col q[j]
	pinv []int32 // pinv[origRow] = pivot step, or the step it was pivoted at
	prow []int32 // prow[k] = original row pivoted at step k

	// L columns: original row indices; the implicit unit diagonal is NOT
	// stored. lrow holds original rows r with pinv[r] > k.
	lp   []int32
	lrow []int32
	lx   []float64

	// U columns: pivot-step indices k < j, sorted ascending; diagonal in ud.
	up []int32
	uk []int32
	ux []float64
	ud []float64

	// Recorded numeric recipe for Refactor: per column, the reach in
	// topological order (original rows) and each node's destination:
	// >= 0: index into ux (U node; k = pinv[row]); -1: pivot; -2..: L node
	// encoded as -(lxIndex+2).
	topoPtr  []int32
	topoRow  []int32
	topoDest []int32

	w    []float64 // workspace, len n, zero outside active reach
	mark []int32   // DFS visit stamp per original row
	tick int32
	stk  []int32 // DFS stack
	post []int32 // topological order buffer

	// Stride-k workspaces of the multi-RHS solves, grown on demand and
	// reused so repeated SolveMulti/SolveTMulti calls allocate nothing.
	mw []float64 // pivot-step-indexed (y / z)
	mb []float64 // original-row-indexed (permuted b)
}

// N returns the matrix dimension.
func (f *LU) N() int { return f.n }

// LNNZ and UNNZ report factor fill (excluding unit/diagonal entries).
func (f *LU) LNNZ() int { return len(f.lrow) }
func (f *LU) UNNZ() int { return len(f.uk) }

// Factor computes the LU factorization of a, choosing pivots, and records
// the symbolic structure for later Refactor calls.
func Factor(a *sparse.Matrix, opt Options) (*LU, error) {
	n := a.P.N
	tau := opt.PivotThreshold
	if tau == 0 {
		tau = 0.1
	}
	q := opt.ColPerm
	if q == nil {
		q = make([]int32, n)
		for i := range q {
			q[i] = int32(i)
		}
	} else if len(q) != n {
		return nil, fmt.Errorf("lu: column permutation length %d, want %d", len(q), n)
	}
	f := &LU{
		n:       n,
		pat:     a.P,
		tau:     tau,
		q:       q,
		pinv:    make([]int32, n),
		prow:    make([]int32, n),
		lp:      make([]int32, 1, n+1),
		up:      make([]int32, 1, n+1),
		ud:      make([]float64, n),
		w:       make([]float64, n),
		mark:    make([]int32, n),
		topoPtr: make([]int32, 1, n+1),
	}
	for i := range f.pinv {
		f.pinv[i] = -1
	}
	csc := a.P.CSC()
	for j := 0; j < n; j++ {
		if err := f.factorColumn(a, csc, int32(j)); err != nil {
			return nil, fmt.Errorf("lu: column %d (original %d): %w", j, f.q[j], err)
		}
	}
	return f, nil
}

// dfsReach computes the reach of column c's structural rows through the
// columns of L pivoted so far, leaving the nodes in topological order in
// f.post (dependencies first).
func (f *LU) dfsReach(csc *sparse.CSCView, c int32) {
	f.tick++
	f.post = f.post[:0]
	for p := csc.ColPtr[c]; p < csc.ColPtr[c+1]; p++ {
		root := csc.RowIdx[p]
		if f.mark[root] == f.tick {
			continue
		}
		// Iterative DFS with an explicit edge-cursor stack.
		f.stk = f.stk[:0]
		f.stk = append(f.stk, root, 0)
		f.mark[root] = f.tick
		for len(f.stk) > 0 {
			node := f.stk[len(f.stk)-2]
			cur := f.stk[len(f.stk)-1]
			k := f.pinv[node]
			expanded := false
			if k >= 0 { // pivoted: children are rows of L column k
				lo, hi := f.lp[k], f.lp[k+1]
				for p2 := lo + cur; p2 < hi; p2++ {
					child := f.lrow[p2]
					if f.mark[child] != f.tick {
						f.stk[len(f.stk)-1] = p2 - lo + 1
						f.stk = append(f.stk, child, 0)
						f.mark[child] = f.tick
						expanded = true
						break
					}
				}
			}
			if !expanded {
				f.stk = f.stk[:len(f.stk)-2]
				f.post = append(f.post, node)
			}
		}
	}
	// f.post is a valid topological order (children recorded before
	// parents), which is the order the sparse triangular solve needs when
	// processed from the END: we want dependencies processed first, and a
	// node's dependencies (the L-columns that update it) are its DFS
	// descendants... For the left-looking update we must process U nodes so
	// that a node is finalized before its column updates others. Reverse
	// postorder gives that.
	for i, j := 0, len(f.post)-1; i < j; i, j = i+1, j-1 {
		f.post[i], f.post[j] = f.post[j], f.post[i]
	}
}

func (f *LU) factorColumn(a *sparse.Matrix, csc *sparse.CSCView, j int32) error {
	c := f.q[j]
	f.dfsReach(csc, c)
	// Scatter A(:,c) into the workspace.
	for p := csc.ColPtr[c]; p < csc.ColPtr[c+1]; p++ {
		f.w[csc.RowIdx[p]] = a.Val[csc.Slot[p]]
	}
	// Sparse triangular solve in topological order.
	for _, node := range f.post {
		k := f.pinv[node]
		if k < 0 {
			continue
		}
		ukj := f.w[node]
		if ukj != 0 {
			for p := f.lp[k]; p < f.lp[k+1]; p++ {
				f.w[f.lrow[p]] -= ukj * f.lx[p]
			}
		}
	}
	// Pivot selection among unpivoted reach rows.
	var pivot int32 = -1
	var pmax float64
	for _, node := range f.post {
		if f.pinv[node] >= 0 {
			continue
		}
		if v := math.Abs(f.w[node]); v > pmax {
			pmax = v
			pivot = node
		}
	}
	if pivot < 0 || pmax == 0 {
		return ErrSingular
	}
	// Prefer the structural diagonal row if it is acceptable.
	if f.pinv[c] < 0 && f.mark[c] == f.tick {
		if v := math.Abs(f.w[c]); v >= f.tau*pmax {
			pivot = c
		}
	}
	d := f.w[pivot]
	f.pinv[pivot] = j
	f.prow[j] = pivot
	f.ud[j] = d

	// Collect U entries (pivoted rows) and L entries (remaining rows),
	// recording the refactor recipe in DFS topological order. Entry order
	// within a column is irrelevant to the solves: both substitution
	// directions only require whole columns to be processed in pivot order.
	for _, node := range f.post {
		f.topoRow = append(f.topoRow, node)
		k := f.pinv[node]
		switch {
		case node == pivot:
			f.topoDest = append(f.topoDest, -1)
		case k >= 0 && k < j:
			f.topoDest = append(f.topoDest, int32(len(f.uk)))
			f.uk = append(f.uk, k)
			f.ux = append(f.ux, f.w[node])
		default: // unpivoted → L
			f.topoDest = append(f.topoDest, -(int32(len(f.lrow)) + 2))
			f.lrow = append(f.lrow, node)
			f.lx = append(f.lx, f.w[node]/d)
		}
		f.w[node] = 0
	}
	f.lp = append(f.lp, int32(len(f.lrow)))
	f.up = append(f.up, int32(len(f.uk)))
	f.topoPtr = append(f.topoPtr, int32(len(f.topoRow)))
	return nil
}

// Refactor recomputes the numeric factors for a matrix with the same
// pattern, reusing the recorded pivot order and symbolic structure. If a
// recorded pivot has collapsed numerically it returns ErrPivotDegraded.
func (f *LU) Refactor(a *sparse.Matrix) error {
	if a.P != f.pat {
		return errors.New("lu: Refactor requires the pattern used by Factor")
	}
	csc := a.P.CSC()
	for j := 0; j < f.n; j++ {
		c := f.q[j]
		for p := csc.ColPtr[c]; p < csc.ColPtr[c+1]; p++ {
			f.w[csc.RowIdx[p]] = a.Val[csc.Slot[p]]
		}
		lo, hi := f.topoPtr[j], f.topoPtr[j+1]
		// Apply the recorded updates in the recorded topological order.
		for t := lo; t < hi; t++ {
			node := f.topoRow[t]
			k := f.pinv[node]
			if node == f.prow[j] || k > int32(j) {
				continue // pivot or L node: no update from it
			}
			ukj := f.w[node]
			dst := f.topoDest[t]
			f.ux[dst] = ukj
			if ukj != 0 {
				for p := f.lp[k]; p < f.lp[k+1]; p++ {
					f.w[f.lrow[p]] -= ukj * f.lx[p]
				}
			}
		}
		d := f.w[f.prow[j]]
		bad := d == 0 || math.IsNaN(d) || math.IsInf(d, 0)
		if !bad {
			// Pivot-growth guard: the recorded pivot must still dominate its
			// column well enough that the L entries stay bounded.
			maxw := 0.0
			for t := lo; t < hi; t++ {
				if f.topoDest[t] < -1 {
					if a := math.Abs(f.w[f.topoRow[t]]); a > maxw {
						maxw = a
					}
				}
			}
			bad = maxw > refactorGrowthLimit*math.Abs(d)
		}
		if bad {
			// Clear workspace before bailing out.
			for t := lo; t < hi; t++ {
				f.w[f.topoRow[t]] = 0
			}
			return ErrPivotDegraded
		}
		f.ud[j] = d
		for t := lo; t < hi; t++ {
			node := f.topoRow[t]
			dst := f.topoDest[t]
			if dst < -1 {
				f.lx[-(dst + 2)] = f.w[node] / d
			}
			f.w[node] = 0
		}
	}
	return nil
}

// Solve solves A·x = b in place: on return b holds x.
func (f *LU) Solve(b []float64) {
	n := f.n
	y := f.w // reuse workspace; fully overwritten then consumed
	// Forward solve L̂ y = P b, processing pivot steps in order.
	for k := 0; k < n; k++ {
		yk := b[f.prow[k]]
		y[k] = yk
		if yk != 0 {
			for p := f.lp[k]; p < f.lp[k+1]; p++ {
				b[f.lrow[p]] -= yk * f.lx[p]
			}
		}
	}
	// Back solve Û x̂ = y.
	for j := n - 1; j >= 0; j-- {
		xj := y[j] / f.ud[j]
		y[j] = xj
		if xj != 0 {
			for p := f.up[j]; p < f.up[j+1]; p++ {
				y[f.uk[p]] -= xj * f.ux[p]
			}
		}
	}
	// Un-permute: x[q[j]] = x̂[j].
	for j := 0; j < n; j++ {
		b[f.q[j]] = y[j]
		y[j] = 0
	}
}

// SolveT solves Aᵀ·x = b in place: on return b holds x.
func (f *LU) SolveT(b []float64) {
	n := f.n
	z := f.w
	// Forward solve Ûᵀ z = ĉ with ĉ[j] = b[q[j]].
	for j := 0; j < n; j++ {
		s := b[f.q[j]]
		for p := f.up[j]; p < f.up[j+1]; p++ {
			s -= f.ux[p] * z[f.uk[p]]
		}
		z[j] = s / f.ud[j]
	}
	// Back solve L̂ᵀ ŷ = z; x[prow[k]] = ŷ[k].
	for k := n - 1; k >= 0; k-- {
		s := z[k]
		for p := f.lp[k]; p < f.lp[k+1]; p++ {
			s -= f.lx[p] * z[f.pinv[f.lrow[p]]]
		}
		z[k] = s
	}
	for k := 0; k < n; k++ {
		b[f.prow[k]] = z[k]
	}
	for k := 0; k < n; k++ {
		z[k] = 0
	}
}
