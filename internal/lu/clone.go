package lu

// Clone returns an independent factorization that shares f's immutable
// symbolic structure (column order, pivot order, fill pattern, and the
// recorded refactor recipe) but owns private copies of the numeric factors
// and scratch, so the clone and the original can Refactor and solve
// concurrently from the same recorded state.
//
// The windowed adjoint engine depends on this: each window's first
// factorize must behave exactly as the serial sweep's would at that step,
// which means starting from the same recorded pivot order — Refactor's
// numerics are a pure function of that structure and the incoming matrix,
// and its ErrPivotDegraded fallback path (a fresh Factor) is reproduced
// identically by the clone.
func (f *LU) Clone() *LU {
	if f == nil {
		return nil
	}
	return &LU{
		n:   f.n,
		pat: f.pat,
		tau: f.tau,
		// Write-once in Factor, read-only in Refactor and the solves:
		// shared between the original and every clone.
		q:        f.q,
		pinv:     f.pinv,
		prow:     f.prow,
		lp:       f.lp,
		lrow:     f.lrow,
		up:       f.up,
		uk:       f.uk,
		topoPtr:  f.topoPtr,
		topoRow:  f.topoRow,
		topoDest: f.topoDest,
		// Overwritten by Refactor: private copies.
		lx: append([]float64(nil), f.lx...),
		ux: append([]float64(nil), f.ux...),
		ud: append([]float64(nil), f.ud...),
		// Scratch. w is zero outside an active Factor/Refactor call, so a
		// fresh zero slice is equivalent; mark/tick/stk/post only matter to
		// Factor, which always builds a new LU.
		w:    make([]float64, f.n),
		mark: make([]int32, f.n),
	}
}
