package lu

import (
	"math"
	"math/rand"
	"testing"

	"masc/internal/sparse"
)

// multiFixture factors a random matrix and builds k identical pairs of
// right-hand sides: one set solved individually, one set solved blocked.
func multiFixture(t *testing.T, rng *rand.Rand, n, k int, indefinite bool) (*LU, [][]float64, [][]float64) {
	t.Helper()
	var m *sparse.Matrix
	if indefinite {
		m = randomIndefinite(rng, n)
	} else {
		m = randomSPDish(rng, n, 4*n)
	}
	f, err := Factor(m, Options{ColPerm: RCM(m.P)})
	if err != nil {
		t.Fatal(err)
	}
	single := make([][]float64, k)
	multi := make([][]float64, k)
	for r := 0; r < k; r++ {
		single[r] = make([]float64, n)
		multi[r] = make([]float64, n)
		for i := 0; i < n; i++ {
			v := rng.NormFloat64()
			single[r][i] = v
			multi[r][i] = v
		}
	}
	return f, single, multi
}

// TestSolveMultiBitIdentical pins the tentpole contract: the blocked
// kernel must produce, for every right-hand side, exactly the bits the
// single-RHS kernel produces.
func TestSolveMultiBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 40; iter++ {
		n := 1 + rng.Intn(70)
		k := 1 + rng.Intn(9)
		f, single, multi := multiFixture(t, rng, n, k, iter%3 == 0)
		for r := range single {
			f.Solve(single[r])
		}
		f.SolveMulti(multi)
		for r := range single {
			for i := range single[r] {
				if math.Float64bits(single[r][i]) != math.Float64bits(multi[r][i]) {
					t.Fatalf("iter %d (n=%d k=%d): rhs %d entry %d: multi %g != single %g",
						iter, n, k, r, i, multi[r][i], single[r][i])
				}
			}
		}
	}
}

func TestSolveTMultiBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 40; iter++ {
		n := 1 + rng.Intn(70)
		k := 1 + rng.Intn(9)
		f, single, multi := multiFixture(t, rng, n, k, iter%3 == 0)
		for r := range single {
			f.SolveT(single[r])
		}
		f.SolveTMulti(multi)
		for r := range single {
			for i := range single[r] {
				if math.Float64bits(single[r][i]) != math.Float64bits(multi[r][i]) {
					t.Fatalf("iter %d (n=%d k=%d): rhs %d entry %d: multi %g != single %g",
						iter, n, k, r, i, multi[r][i], single[r][i])
				}
			}
		}
	}
}

// TestSolveMultiResidual sanity-checks the blocked kernels against the
// matrix itself, independently of the single-RHS path.
func TestSolveMultiResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 50
	m := randomSPDish(rng, n, 4*n)
	f, err := Factor(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := 6
	bs := make([][]float64, k)
	want := make([][]float64, k)
	for r := range bs {
		bs[r] = make([]float64, n)
		want[r] = make([]float64, n)
		for i := range bs[r] {
			bs[r][i] = rng.NormFloat64()
			want[r][i] = bs[r][i]
		}
	}
	f.SolveMulti(bs)
	for r := range bs {
		if res := residual(m, bs[r], want[r]); res > 1e-9 {
			t.Fatalf("rhs %d: residual %g", r, res)
		}
		copy(bs[r], want[r])
	}
	f.SolveTMulti(bs)
	for r := range bs {
		if res := residualT(m, bs[r], want[r]); res > 1e-9 {
			t.Fatalf("transpose rhs %d: residual %g", r, res)
		}
	}
}

// TestSolveMultiAllocs pins the steady-state allocation count of the
// blocked kernels at zero: the stride-k scratch is grown once and reused.
func TestSolveMultiAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 40
	m := randomSPDish(rng, n, 4*n)
	f, err := Factor(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := 8
	bs := make([][]float64, k)
	for r := range bs {
		bs[r] = make([]float64, n)
		for i := range bs[r] {
			bs[r][i] = rng.NormFloat64()
		}
	}
	f.SolveMulti(bs)  // warm the scratch
	f.SolveTMulti(bs) // both buffers
	if a := testing.AllocsPerRun(50, func() { f.SolveMulti(bs) }); a != 0 {
		t.Fatalf("SolveMulti allocates %v per run, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() { f.SolveTMulti(bs) }); a != 0 {
		t.Fatalf("SolveTMulti allocates %v per run, want 0", a)
	}
}

// benchFactor builds a mid-sized factorization and k right-hand sides for
// the single-vs-blocked comparison.
func benchFactor(b *testing.B, n, k int) (*LU, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	m := randomSPDish(rng, n, 6*n)
	f, err := Factor(m, Options{ColPerm: RCM(m.P)})
	if err != nil {
		b.Fatal(err)
	}
	bs := make([][]float64, k)
	for r := range bs {
		bs[r] = make([]float64, n)
		for i := range bs[r] {
			bs[r][i] = rng.NormFloat64()
		}
	}
	f.SolveMulti(bs)
	f.SolveTMulti(bs)
	return f, bs
}

func BenchmarkSolveTSingleLoop(b *testing.B) {
	f, bs := benchFactor(b, 600, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := range bs {
			f.SolveT(bs[r])
		}
	}
}

func BenchmarkSolveTMulti(b *testing.B) {
	f, bs := benchFactor(b, 600, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SolveTMulti(bs)
	}
}

func BenchmarkSolveSingleLoop(b *testing.B) {
	f, bs := benchFactor(b, 600, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := range bs {
			f.Solve(bs[r])
		}
	}
}

func BenchmarkSolveMulti(b *testing.B) {
	f, bs := benchFactor(b, 600, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SolveMulti(bs)
	}
}
