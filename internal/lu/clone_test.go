package lu

import (
	"math"
	"math/rand"
	"testing"

	"masc/internal/sparse"
)

// perturbed returns a matrix on m's pattern with perturbed values, so
// Refactor (which requires the identical pattern) sees fresh numerics.
func perturbed(m *sparse.Matrix, rng *rand.Rand, scale float64) *sparse.Matrix {
	out := &sparse.Matrix{P: m.P, Val: append([]float64(nil), m.Val...)}
	for k := range out.Val {
		out.Val[k] += scale * 0.01 * rng.NormFloat64() * (1 + math.Abs(out.Val[k]))
	}
	return out
}

// TestCloneRefactorMatchesOriginal pins the Clone contract: refactoring a
// clone with a new matrix produces bit-identical solves to refactoring the
// original, and the two then evolve independently.
func TestCloneRefactorMatchesOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 24
	m1 := randomSPDish(rng, n, 3*n)
	f, err := Factor(m1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := f.Clone()

	// Same next matrix through both: solves must agree bit for bit.
	m2 := perturbed(m1, rng, 2)
	if err := f.Refactor(m2); err != nil {
		t.Fatalf("original refactor: %v", err)
	}
	if err := g.Refactor(m2); err != nil {
		t.Fatalf("clone refactor: %v", err)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x1 := append([]float64(nil), rhs...)
	x2 := append([]float64(nil), rhs...)
	f.SolveT(x1)
	g.SolveT(x2)
	for i := range x1 {
		if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
			t.Fatalf("solve diverges at %d: %g vs %g", i, x1[i], x2[i])
		}
	}

	// Diverge: refactor the original with a third matrix; the clone's
	// factors must be untouched.
	if err := f.Refactor(perturbed(m1, rng, 3)); err != nil {
		t.Fatalf("diverging refactor: %v", err)
	}
	x3 := append([]float64(nil), rhs...)
	g.SolveT(x3)
	for i := range x2 {
		if math.Float64bits(x2[i]) != math.Float64bits(x3[i]) {
			t.Fatalf("clone factors mutated by original's refactor at %d", i)
		}
	}
}
