package lu

import (
	"sort"

	"masc/internal/sparse"
)

// RCM computes a reverse Cuthill–McKee ordering of the symmetrized pattern
// A + Aᵀ. The returned permutation lists original indices in factorization
// order and is suitable as Options.ColPerm: it reduces bandwidth (and hence
// LU fill) dramatically on mesh-like circuits.
func RCM(p *sparse.Pattern) []int32 {
	n := p.N
	// Build symmetric adjacency (excluding self loops).
	adjPtr := make([]int32, n+1)
	deg := make([]int32, n)
	count := func(i, j int32) {
		if i != j {
			deg[i]++
		}
	}
	tr := p.TransposeSlots()
	for i := int32(0); i < int32(n); i++ {
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			j := p.ColIdx[k]
			count(i, j)
			if tr[k] < 0 { // (j,i) absent: add the mirrored edge
				count(j, i)
			}
		}
	}
	for i := 0; i < n; i++ {
		adjPtr[i+1] = adjPtr[i] + deg[i]
	}
	adj := make([]int32, adjPtr[n])
	next := make([]int32, n)
	copy(next, adjPtr[:n])
	put := func(i, j int32) {
		if i != j {
			adj[next[i]] = j
			next[i]++
		}
	}
	for i := int32(0); i < int32(n); i++ {
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			j := p.ColIdx[k]
			put(i, j)
			if tr[k] < 0 {
				put(j, i)
			}
		}
	}

	order := make([]int32, 0, n)
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	// Process every connected component, starting each from a minimum-degree
	// node (a cheap pseudo-peripheral choice).
	nodesByDeg := make([]int32, n)
	for i := range nodesByDeg {
		nodesByDeg[i] = int32(i)
	}
	sort.Slice(nodesByDeg, func(a, b int) bool { return deg[nodesByDeg[a]] < deg[nodesByDeg[b]] })
	for _, start := range nodesByDeg {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], start)
		order = append(order, start)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			// Gather unvisited neighbours, then append in degree order.
			lo := len(queue)
			for a := adjPtr[u]; a < adjPtr[u+1]; a++ {
				v := adj[a]
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
			nb := queue[lo:]
			sort.Slice(nb, func(a, b int) bool { return deg[nb[a]] < deg[nb[b]] })
			order = append(order, nb...)
		}
	}
	// Reverse (the "R" in RCM).
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}
