package lu

// Blocked multi-right-hand-side solves. The cost of a sparse triangular
// solve is dominated by pointer-chasing through the factor columns (lp/lrow,
// up/uk); when the adjoint sweep solves the same factorization for many
// objectives, traversing those columns once and streaming k right-hand sides
// through each visited entry amortizes that cost k ways. The k values of one
// node live contiguously (stride-k layout), so the inner loop over
// right-hand sides is a dense, cache-friendly sweep.
//
// Both kernels are bit-identical to k independent Solve/SolveT calls: every
// right-hand side sees exactly the same floating-point operations in exactly
// the same order — the interleaving only reorders operations between
// independent solves, never within one.

// multiScratch returns the two stride-k workspaces, growing the backing
// arrays on demand. After the first call with a given k (or any larger
// one), subsequent multi-solves allocate nothing.
func (f *LU) multiScratch(k int) (zs, ws []float64) {
	need := f.n * k
	if cap(f.mw) < need {
		f.mw = make([]float64, need)
	}
	if cap(f.mb) < need {
		f.mb = make([]float64, need)
	}
	return f.mw[:need], f.mb[:need]
}

// SolveMulti solves A·x = b in place for every right-hand side in bs: on
// return each bs[r] holds its solution. The factor columns are traversed
// once for all len(bs) systems. Results are bit-identical to calling Solve
// on each right-hand side individually. bs[r] must not alias each other.
func (f *LU) SolveMulti(bs [][]float64) {
	k := len(bs)
	switch k {
	case 0:
		return
	case 1:
		f.Solve(bs[0])
		return
	}
	n := f.n
	zs, ws := f.multiScratch(k)
	// Scatter the right-hand sides into the original-row-indexed workspace.
	for r, b := range bs {
		for i := 0; i < n; i++ {
			ws[i*k+r] = b[i]
		}
	}
	// Forward solve L̂ y = P b, processing pivot steps in order. ws plays
	// the role of the in-place-updated b; zs holds y.
	for kk := 0; kk < n; kk++ {
		base := kk * k
		copy(zs[base:base+k], ws[int(f.prow[kk])*k:int(f.prow[kk])*k+k])
		for p := f.lp[kk]; p < f.lp[kk+1]; p++ {
			l := f.lx[p]
			wb := int(f.lrow[p]) * k
			for r := 0; r < k; r++ {
				ws[wb+r] -= zs[base+r] * l
			}
		}
	}
	// Back solve Û x̂ = y.
	for j := n - 1; j >= 0; j-- {
		base := j * k
		d := f.ud[j]
		for r := 0; r < k; r++ {
			zs[base+r] /= d
		}
		for p := f.up[j]; p < f.up[j+1]; p++ {
			u := f.ux[p]
			ub := int(f.uk[p]) * k
			for r := 0; r < k; r++ {
				zs[ub+r] -= zs[base+r] * u
			}
		}
	}
	// Un-permute: x[q[j]] = x̂[j].
	for j := 0; j < n; j++ {
		base := j * k
		qj := f.q[j]
		for r, b := range bs {
			b[qj] = zs[base+r]
		}
	}
}

// SolveTMulti solves Aᵀ·x = b in place for every right-hand side in bs,
// traversing the factor columns once for all len(bs) systems — the adjoint
// sweep's one-factorization-many-objectives kernel. Results are
// bit-identical to calling SolveT on each right-hand side individually.
// bs[r] must not alias each other.
func (f *LU) SolveTMulti(bs [][]float64) {
	k := len(bs)
	switch k {
	case 0:
		return
	case 1:
		f.SolveT(bs[0])
		return
	}
	n := f.n
	zs, _ := f.multiScratch(k)
	// Forward solve Ûᵀ z = ĉ with ĉ[j] = b[q[j]].
	for j := 0; j < n; j++ {
		base := j * k
		qj := f.q[j]
		for r, b := range bs {
			zs[base+r] = b[qj]
		}
		for p := f.up[j]; p < f.up[j+1]; p++ {
			u := f.ux[p]
			ub := int(f.uk[p]) * k
			for r := 0; r < k; r++ {
				zs[base+r] -= u * zs[ub+r]
			}
		}
		d := f.ud[j]
		for r := 0; r < k; r++ {
			zs[base+r] /= d
		}
	}
	// Back solve L̂ᵀ ŷ = z; x[prow[kk]] = ŷ[kk].
	for kk := n - 1; kk >= 0; kk-- {
		base := kk * k
		for p := f.lp[kk]; p < f.lp[kk+1]; p++ {
			l := f.lx[p]
			sb := int(f.pinv[f.lrow[p]]) * k
			for r := 0; r < k; r++ {
				zs[base+r] -= l * zs[sb+r]
			}
		}
	}
	for kk := 0; kk < n; kk++ {
		base := kk * k
		row := f.prow[kk]
		for r, b := range bs {
			b[row] = zs[base+r]
		}
	}
}
