package lu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"masc/internal/sparse"
)

// randomSPDish builds a diagonally dominant random sparse matrix, which is
// comfortably factorable without pivoting drama.
func randomSPDish(rng *rand.Rand, n, extra int) *sparse.Matrix {
	b := sparse.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(int32(i), int32(i))
	}
	type edge struct{ i, j int32 }
	edges := map[edge]bool{}
	for e := 0; e < extra; e++ {
		i, j := int32(rng.Intn(n)), int32(rng.Intn(n))
		if i == j {
			continue
		}
		edges[edge{i, j}] = true
		b.Add(i, j)
	}
	m := sparse.NewMatrix(b.Build())
	for e := range edges {
		m.AddAt(e.i, e.j, rng.NormFloat64())
	}
	for i := 0; i < n; i++ {
		rowAbs := 1.0
		lo, hi := m.P.Row(int32(i))
		for k := lo; k < hi; k++ {
			if m.P.ColIdx[k] != int32(i) {
				rowAbs += math.Abs(m.Val[k])
			}
		}
		m.AddAt(int32(i), int32(i), rowAbs+rng.Float64())
	}
	return m
}

// randomIndefinite builds a matrix that needs pivoting: some structural
// diagonal entries are zero (as in MNA voltage-source rows).
func randomIndefinite(rng *rand.Rand, n int) *sparse.Matrix {
	b := sparse.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(int32(i), int32(i))
		// A ring plus random fill keeps it irreducible.
		b.Add(int32(i), int32((i+1)%n))
		b.Add(int32((i+1)%n), int32(i))
	}
	for e := 0; e < 3*n; e++ {
		b.Add(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	m := sparse.NewMatrix(b.Build())
	for k := range m.Val {
		m.Val[k] = rng.NormFloat64()*2 + 0.1
	}
	// Zero out a few diagonals.
	d := m.P.DiagSlots()
	for i := 0; i < n; i += 5 {
		m.Val[d[i]] = 0
	}
	return m
}

func residual(m *sparse.Matrix, x, b []float64) float64 {
	n := m.P.N
	ax := make([]float64, n)
	m.MulVec(x, ax)
	worst := 0.0
	for i := 0; i < n; i++ {
		if r := math.Abs(ax[i] - b[i]); r > worst {
			worst = r
		}
	}
	return worst
}

func residualT(m *sparse.Matrix, x, b []float64) float64 {
	n := m.P.N
	ax := make([]float64, n)
	m.MulVecT(x, ax)
	worst := 0.0
	for i := 0; i < n; i++ {
		if r := math.Abs(ax[i] - b[i]); r > worst {
			worst = r
		}
	}
	return worst
}

func TestSolveDiagonallyDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 25; iter++ {
		n := 1 + rng.Intn(60)
		m := randomSPDish(rng, n, 4*n)
		f, err := Factor(m, Options{})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		b := make([]float64, n)
		want := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
			want[i] = b[i]
		}
		f.Solve(b)
		if r := residual(m, b, want); r > 1e-9 {
			t.Fatalf("iter %d: residual %g", iter, r)
		}
	}
}

func TestSolveTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 25; iter++ {
		n := 1 + rng.Intn(60)
		m := randomSPDish(rng, n, 4*n)
		f, err := Factor(m, Options{})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		b := make([]float64, n)
		want := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
			want[i] = b[i]
		}
		f.SolveT(b)
		if r := residualT(m, b, want); r > 1e-9 {
			t.Fatalf("iter %d: residual %g", iter, r)
		}
	}
}

func TestPivotingIndefinite(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 25; iter++ {
		n := 10 + rng.Intn(40)
		m := randomIndefinite(rng, n)
		f, err := Factor(m, Options{})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		b := make([]float64, n)
		want := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
			want[i] = b[i]
		}
		f.Solve(b)
		if r := residual(m, b, want); r > 1e-6 {
			t.Fatalf("iter %d: residual %g", iter, r)
		}
	}
}

func TestRefactorMatchesFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 15; iter++ {
		n := 10 + rng.Intn(40)
		m := randomSPDish(rng, n, 4*n)
		f, err := Factor(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Perturb values (same pattern) and refactor.
		m2 := m.Clone()
		for k := range m2.Val {
			m2.Val[k] *= 1 + 0.1*rng.NormFloat64()
		}
		d := m2.P.DiagSlots()
		for i := 0; i < n; i++ {
			m2.Val[d[i]] += 1 // keep dominance
		}
		if err := f.Refactor(m2); err != nil {
			t.Fatalf("iter %d: refactor: %v", iter, err)
		}
		b := make([]float64, n)
		want := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
			want[i] = b[i]
		}
		f.Solve(b)
		if r := residual(m2, b, want); r > 1e-9 {
			t.Fatalf("iter %d: refactor residual %g", iter, r)
		}
		bt := make([]float64, n)
		copy(bt, want)
		f.SolveT(bt)
		if r := residualT(m2, bt, want); r > 1e-9 {
			t.Fatalf("iter %d: refactor transpose residual %g", iter, r)
		}
	}
}

func TestSingularDetected(t *testing.T) {
	b := sparse.NewBuilder(3)
	b.Add(0, 0)
	b.Add(1, 1)
	b.Add(2, 2)
	b.Add(0, 1)
	m := sparse.NewMatrix(b.Build())
	m.AddAt(0, 0, 1)
	m.AddAt(0, 1, 2)
	m.AddAt(1, 1, 3)
	// Row/col 2 is structurally present but numerically zero.
	if _, err := Factor(m, Options{}); err == nil {
		t.Fatal("expected singularity error")
	}
}

func TestRefactorRejectsForeignPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m1 := randomSPDish(rng, 10, 30)
	m2 := randomSPDish(rng, 10, 30)
	f, err := Factor(m1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Refactor(m2); err == nil {
		t.Fatal("expected error refactoring a different pattern")
	}
}

func TestRCMOrderingIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 10; iter++ {
		n := 1 + rng.Intn(80)
		m := randomSPDish(rng, n, 3*n)
		ord := RCM(m.P)
		if len(ord) != n {
			t.Fatalf("ordering length %d, want %d", len(ord), n)
		}
		seen := make([]bool, n)
		for _, v := range ord {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("not a permutation: %v", ord)
			}
			seen[v] = true
		}
	}
}

func TestRCMReducesFillOnLadder(t *testing.T) {
	// A 2-D grid Laplacian: RCM should not increase fill versus a random
	// permutation (it typically reduces it a lot).
	side := 20
	n := side * side
	b := sparse.NewBuilder(n)
	id := func(r, c int) int32 { return int32(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			b.Add(id(r, c), id(r, c))
			if r+1 < side {
				b.Add(id(r, c), id(r+1, c))
				b.Add(id(r+1, c), id(r, c))
			}
			if c+1 < side {
				b.Add(id(r, c), id(r, c+1))
				b.Add(id(r, c+1), id(r, c))
			}
		}
	}
	m := sparse.NewMatrix(b.Build())
	for i := 0; i < n; i++ {
		m.AddAt(int32(i), int32(i), 4)
	}
	for i := int32(0); i < int32(n); i++ {
		lo, hi := m.P.Row(i)
		for k := lo; k < hi; k++ {
			if m.P.ColIdx[k] != i {
				m.Val[k] = -1
			}
		}
	}
	rng := rand.New(rand.NewSource(1))
	randPerm := make([]int32, n)
	for i := range randPerm {
		randPerm[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { randPerm[i], randPerm[j] = randPerm[j], randPerm[i] })

	fRand, err := Factor(m, Options{ColPerm: randPerm})
	if err != nil {
		t.Fatal(err)
	}
	fRCM, err := Factor(m, Options{ColPerm: RCM(m.P)})
	if err != nil {
		t.Fatal(err)
	}
	if fRCM.LNNZ()+fRCM.UNNZ() > fRand.LNNZ()+fRand.UNNZ() {
		t.Fatalf("RCM fill %d worse than random %d", fRCM.LNNZ()+fRCM.UNNZ(), fRand.LNNZ()+fRand.UNNZ())
	}
	// Sanity: solve still correct under ordering.
	b2 := make([]float64, n)
	want := make([]float64, n)
	for i := range b2 {
		b2[i] = rng.NormFloat64()
		want[i] = b2[i]
	}
	fRCM.Solve(b2)
	if r := residual(m, b2, want); r > 1e-8 {
		t.Fatalf("residual with RCM: %g", r)
	}
}

func TestQuickSolve(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%30) + 2
		m := randomSPDish(rng, n, 3*n)
		fac, err := Factor(m, Options{})
		if err != nil {
			return false
		}
		b := make([]float64, n)
		want := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
			want[i] = b[i]
		}
		fac.Solve(b)
		return residual(m, b, want) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFactor(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randomSPDish(rng, 2000, 10000)
	q := RCM(m.P)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(m, Options{ColPerm: q}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefactor(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randomSPDish(rng, 2000, 10000)
	f, err := Factor(m, Options{ColPerm: RCM(m.P)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Refactor(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randomSPDish(rng, 2000, 10000)
	f, err := Factor(m, Options{ColPerm: RCM(m.P)})
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, m.P.N)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	buf := make([]float64, len(rhs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, rhs)
		f.Solve(buf)
	}
}

func TestSolveRefinedImprovesResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	// An ill-conditioned matrix: diagonally dominant base plus a near-
	// dependent pair of rows.
	n := 60
	m := randomSPDish(rng, n, 4*n)
	// Scale one row way down to hurt conditioning.
	lo, hi := m.P.Row(7)
	for k := lo; k < hi; k++ {
		m.Val[k] *= 1e-10
	}
	f, err := Factor(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	want := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
		want[i] = b[i]
	}
	plain := append([]float64(nil), want...)
	f.Solve(plain)
	plainRes := residual(m, plain, want)

	refined := append([]float64(nil), want...)
	refRes := f.SolveRefined(m, refined, 4)
	if refRes > plainRes*1.01 {
		t.Fatalf("refinement did not help: %g vs %g", refRes, plainRes)
	}
	// κ ≈ 1e10 puts the attainable residual near κ·ε ≈ 1e-6.
	if refRes > 1e-6 {
		t.Fatalf("refined residual still large: %g", refRes)
	}
}

func TestCondEstimate(t *testing.T) {
	// Diagonal matrices have known κ₁ = max|d|/min|d|.
	n := 12
	b := sparse.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(int32(i), int32(i))
	}
	m := sparse.NewMatrix(b.Build())
	for i := 0; i < n; i++ {
		m.Val[i] = float64(i + 1) // κ₁ = 12
	}
	f, err := Factor(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	est := f.CondEstimate(m)
	if est < 11.9 || est > 12.1 {
		t.Fatalf("diagonal condition estimate %g, want 12", est)
	}
	// A well-conditioned random matrix must not report a huge κ, and the
	// estimate is a lower bound so it must exceed 1.
	rng := rand.New(rand.NewSource(32))
	m2 := randomSPDish(rng, 40, 160)
	f2, err := Factor(m2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	est2 := f2.CondEstimate(m2)
	if est2 < 1 || est2 > 1e6 {
		t.Fatalf("random-matrix condition estimate %g out of plausible range", est2)
	}
}
