package verify

import (
	"math"
	"testing"
)

// TestFleetSmoke runs a compact fleet — every circuit family appears at
// least once — through the full differential matrix. This is the in-tree
// slice of what `masc-verify -n 50` runs pre-merge.
func TestFleetSmoke(t *testing.T) {
	cases := Cases(2*len(Families), 1)
	fr := Fleet(cases, Options{FDChecks: 2})
	for _, rep := range fr.Reports {
		for _, f := range rep.Failures {
			t.Errorf("%s: %s", rep.Case.Name(), f)
		}
	}
	if fr.FDChecked == 0 {
		t.Error("finite-difference layer never engaged")
	}
}

// TestCasesDeterministic pins the generator contract the whole harness
// rests on: the same (n, seed) must reproduce identical circuits, and
// Build must be repeatable on one Case (VerifyCase rebuilds per storage
// mode and compares bitwise).
func TestCasesDeterministic(t *testing.T) {
	a := Cases(10, 7)
	b := Cases(10, 7)
	for i := range a {
		if a[i].Name() != b[i].Name() || a[i].Seed != b[i].Seed {
			t.Fatalf("case %d differs across identical Cases calls", i)
		}
		ba, err := a[i].Build()
		if err != nil {
			t.Fatalf("%s: %v", a[i].Name(), err)
		}
		bb, err := b[i].Build()
		if err != nil {
			t.Fatalf("%s: %v", b[i].Name(), err)
		}
		pa, pb := ba.Ckt.Params(), bb.Ckt.Params()
		if len(pa) != len(pb) {
			t.Fatalf("%s: param counts differ", a[i].Name())
		}
		for k := range pa {
			if pa[k].Name != pb[k].Name ||
				math.Float64bits(pa[k].Get()) != math.Float64bits(pb[k].Get()) {
				t.Fatalf("%s: param %d differs across rebuilds", a[i].Name(), k)
			}
		}
	}
}

// TestRelErrScaleFloor exercises the comparison primitive's floor: an
// absolute discrepancy far below the scale must not register.
func TestRelErrScaleFloor(t *testing.T) {
	if e := relErr(1e-12, 2e-12, 1e-3); e > 1e-8 {
		t.Fatalf("scale floor ignored: %g", e)
	}
	if e := relErr(1.0, 1.1, 1e-3); e < 0.05 {
		t.Fatalf("real discrepancy suppressed: %g", e)
	}
	if relErr(0, 0, 0) != 0 {
		t.Fatal("0/0 must be 0")
	}
}
