package verify

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"masc"
	"masc/internal/runstate"
)

// The crash gauntlet (masc-verify -crash) is the process-level half of the
// crash-durability contract: it forks a real child process running a
// journaled simulation, SIGKILLs it at a seeded trigger observed from the
// journal itself (mid-forward, right after forward-done, mid-adjoint),
// resumes the torn journal in-process, and gates the resumed sensitivities
// bit-identical against an uninterrupted journaled reference. SIGKILL is
// not interceptable, so whatever the journal holds at that instant is
// exactly what a power cut would have left.

// CrashChildEnv carries the JSON CrashSpec into the forked child process.
const CrashChildEnv = "MASC_CRASH_CHILD_SPEC"

// CrashSpec describes the journaled run a forked crash child executes.
// The circuit is not serialized: the child rebuilds it from the case seed,
// which is deterministic across processes.
type CrashSpec struct {
	CaseIndex int    `json:"case_index"`
	CaseSeed  int64  `json:"case_seed"`
	Family    string `json:"family"`

	Storage         string  `json:"storage"`
	Windows         int     `json:"windows"`
	MemBudgetBytes  int64   `json:"mem_budget_bytes,omitempty"`
	DiskBytesPerSec float64 `json:"disk_bps,omitempty"`
	// StepSleepMs throttles the forward loop so the parent's kill trigger
	// reliably lands mid-phase on the gauntlet's small circuits.
	StepSleepMs int    `json:"step_sleep_ms,omitempty"`
	FsyncEvery  int    `json:"fsync_every,omitempty"`
	Journal     string `json:"journal"`
}

// IsCrashChild reports whether this process was forked as a crash child.
func IsCrashChild() bool { return os.Getenv(CrashChildEnv) != "" }

// CrashChild executes the journaled run described by the environment spec
// and returns the process exit code; callers (masc-verify's main, the test
// helper) must os.Exit with it immediately.
func CrashChild() int {
	var spec CrashSpec
	if err := json.Unmarshal([]byte(os.Getenv(CrashChildEnv)), &spec); err != nil {
		fmt.Fprintln(os.Stderr, "crash child: bad spec:", err)
		return 2
	}
	c := &Case{Index: spec.CaseIndex, Seed: spec.CaseSeed, Family: spec.Family}
	bt, err := c.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		return 2
	}
	opt := bt.SimBase
	opt.Storage = masc.Storage(spec.Storage)
	opt.AdjointWindows = spec.Windows
	opt.MemBudgetBytes = spec.MemBudgetBytes
	opt.DiskBytesPerSec = spec.DiskBytesPerSec
	opt.Journal = spec.Journal
	opt.JournalFsyncEvery = spec.FsyncEvery
	if spec.StepSleepMs > 0 {
		d := time.Duration(spec.StepSleepMs) * time.Millisecond
		opt.Transient.AfterStep = func(int, float64, float64, float64, int, []float64) error {
			time.Sleep(d)
			return nil
		}
	}
	if _, err := masc.Simulate(bt.Ckt, opt, bt.Objectives, nil); err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		return 1
	}
	return 0
}

// crashScenario is one (storage, kill point) cell of the gauntlet matrix.
type crashScenario struct {
	name    string
	storage masc.Storage
	windows int
	budget  int64
	diskBPS float64
	sleepMs int
	// trigger inspects the child's journal as it grows; true = kill now.
	trigger func(r *runstate.Recovered, killStep int) bool
}

func crashScenarios(opt Options) []crashScenario {
	budget := opt.MemBudgetBytes
	if budget <= 0 {
		budget = 64 << 10
	}
	return []crashScenario{
		// Mid-forward kill under the compressed store; the throttle keeps
		// the forward phase slow enough that the seeded step is observed.
		{name: "kill-forward-masc", storage: masc.StorageMASC, windows: 3, sleepMs: 2,
			trigger: func(r *runstate.Recovered, killStep int) bool { return len(r.Steps) >= killStep }},
		// Kill at the forward/adjoint boundary under the tiered store, so
		// the resume rebuilds hot/compressed/spilled placements from
		// scratch — and the spill pre-sync path ran before every
		// checkpoint the journal kept.
		{name: "kill-forward-done-tiered", storage: masc.StorageMASC, windows: 3, budget: budget, sleepMs: 1,
			trigger: func(r *runstate.Recovered, _ int) bool { return r.ForwardDone }},
		// Mid-adjoint kill: the bandwidth-modelled disk store slows the
		// reverse sweep, and the trigger waits for a completed window
		// record so the resume replays some windows and re-sweeps others.
		{name: "kill-adjoint-disk", storage: masc.StorageDisk, windows: 3, diskBPS: 2e6,
			trigger: func(r *runstate.Recovered, _ int) bool { return len(r.Windows) >= 1 }},
	}
}

// CrashCaseReport is the outcome of one forked run.
type CrashCaseReport struct {
	Case     *Case
	Scenario string
	// Outcome is "killed+resumed" (the trigger fired and the kill landed
	// mid-run) or "finished-before-kill" (the child beat the trigger; the
	// completed journal was still resumed and gated). Empty on failure.
	Outcome  string
	Failures []string
}

// CrashReport aggregates the gauntlet.
type CrashReport struct {
	Reports []*CrashCaseReport
	Failed  int
	// Killed counts runs where the SIGKILL actually landed mid-run.
	Killed int
}

// OK reports whether every forked run resumed bit-identical.
func (r *CrashReport) OK() bool { return r.Failed == 0 }

// CrashFleet forks one journaled run per (case, scenario) from the current
// binary, kills it at the scenario's trigger, resumes the torn journal
// in-process and gates bit-identity against an uninterrupted journaled
// reference. childArgs is the extra argv the forked binary needs to route
// itself into CrashChild (none for masc-verify; the test harness passes its
// -test.run selector).
func CrashFleet(seeds int, seed int64, opt Options, childArgs []string) *CrashReport {
	rep := &CrashReport{}
	exe, err := os.Executable()
	if err != nil {
		rep.Reports = append(rep.Reports, &CrashCaseReport{
			Failures: []string{fmt.Sprintf("os.Executable: %v", err)}})
		rep.Failed++
		return rep
	}
	dir, err := os.MkdirTemp("", "masc-crash-*")
	if err != nil {
		rep.Reports = append(rep.Reports, &CrashCaseReport{
			Failures: []string{fmt.Sprintf("temp dir: %v", err)}})
		rep.Failed++
		return rep
	}
	defer os.RemoveAll(dir)

	for _, c := range Cases(seeds, seed) {
		bt, err := c.Build()
		if err != nil {
			rep.Reports = append(rep.Reports, &CrashCaseReport{Case: c,
				Failures: []string{err.Error()}})
			rep.Failed++
			continue
		}
		// The uninterrupted reference. It must be journaled too: journaling
		// pins FreshFactorPerStep, and the bit-compare needs both sides on
		// the same factorization discipline. Storage and window count are
		// bit-irrelevant by the engine's contract, so one reference serves
		// every scenario.
		refOpt := bt.SimBase
		refOpt.Storage = masc.StorageMASC
		refOpt.AdjointWindows = 3
		refOpt.Journal = filepath.Join(dir, fmt.Sprintf("case%03d-ref.journal", c.Index))
		ref, err := masc.Simulate(bt.Ckt, refOpt, bt.Objectives, nil)
		if err != nil {
			rep.Reports = append(rep.Reports, &CrashCaseReport{Case: c,
				Failures: []string{fmt.Sprintf("reference run: %v", err)}})
			rep.Failed++
			continue
		}
		rng := rand.New(rand.NewSource(c.Seed ^ 0x6b696c6c)) // "kill"
		for _, sc := range crashScenarios(opt) {
			killStep := 3 + rng.Intn(bt.Steps/2+1)
			r := runCrashScenario(exe, childArgs, dir, c, bt, sc, killStep, ref)
			rep.Reports = append(rep.Reports, r)
			if len(r.Failures) > 0 {
				rep.Failed++
			} else if r.Outcome == "killed+resumed" {
				rep.Killed++
			}
			if opt.Logf != nil {
				opt.Logf("  %s %s: %s killStep=%d failures=%d",
					c.Name(), sc.name, r.Outcome, killStep, len(r.Failures))
			}
		}
	}
	return rep
}

func runCrashScenario(exe string, childArgs []string, dir string, c *Case, bt *Built,
	sc crashScenario, killStep int, ref *masc.Run) *CrashCaseReport {
	r := &CrashCaseReport{Case: c, Scenario: sc.name}
	fail := func(format string, args ...any) *CrashCaseReport {
		r.Outcome = ""
		r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
		return r
	}
	journal := filepath.Join(dir, fmt.Sprintf("case%03d-%s.journal", c.Index,
		strings.ReplaceAll(sc.name, "/", "-")))
	spec := CrashSpec{
		CaseIndex: c.Index, CaseSeed: c.Seed, Family: c.Family,
		Storage: string(sc.storage), Windows: sc.windows,
		MemBudgetBytes: sc.budget, DiskBytesPerSec: sc.diskBPS,
		StepSleepMs: sc.sleepMs,
		FsyncEvery:  1, // journal visibility at every step: the widest kill surface
		Journal:     journal,
	}
	raw, err := json.Marshal(&spec)
	if err != nil {
		return fail("encode spec: %v", err)
	}
	cmd := exec.Command(exe, childArgs...)
	cmd.Env = append(os.Environ(), CrashChildEnv+"="+string(raw))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		return fail("start child: %v", err)
	}
	waitc := make(chan error, 1)
	go func() { waitc <- cmd.Wait() }()

	killed := false
	start := time.Now()
poll:
	for {
		select {
		case werr := <-waitc:
			if werr != nil {
				return fail("child failed before the kill: %v: %s", werr, stderr.String())
			}
			break poll // finished cleanly first; resume the complete journal
		case <-time.After(500 * time.Microsecond):
		}
		if time.Since(start) > 30*time.Second {
			cmd.Process.Kill()
			<-waitc
			return fail("kill trigger never fired within 30s (journal: %s)", journal)
		}
		if rcv, err := runstate.Recover(journal); err == nil && sc.trigger(rcv, killStep) {
			cmd.Process.Kill()
			<-waitc
			killed = true
			break poll
		}
	}

	run, err := masc.Resume(bt.Ckt, journal, masc.SimOptions{})
	if err != nil {
		return fail("resume: %v (child stderr: %s)", err, stderr.String())
	}
	if msg, ok := dodpEqual(ref.Sens.DOdp, run.Sens.DOdp); !ok {
		return fail("resumed sensitivities differ from uninterrupted reference: %s", msg)
	}
	// The healed journal must now short-circuit without replaying anything.
	again, err := masc.Resume(bt.Ckt, journal, masc.SimOptions{})
	if err != nil {
		return fail("resume of healed journal: %v", err)
	}
	if again.Tran != nil {
		return fail("healed journal replayed the forward phase instead of short-circuiting")
	}
	if msg, ok := dodpEqual(ref.Sens.DOdp, again.Sens.DOdp); !ok {
		return fail("short-circuit result differs: %s", msg)
	}
	if killed {
		r.Outcome = "killed+resumed"
	} else {
		r.Outcome = "finished-before-kill"
	}
	return r
}
