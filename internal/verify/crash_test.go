package verify

import (
	"os"
	"testing"
)

// TestCrashChildHelper is not a test: it is the re-exec target the crash
// gauntlet forks. CrashFleet launches this binary with
// -test.run=TestCrashChildHelper and the spec in the environment; without
// the spec it skips.
func TestCrashChildHelper(t *testing.T) {
	if !IsCrashChild() {
		t.Skip("not a crash child")
	}
	os.Exit(CrashChild())
}

// TestCrashResumeGauntlet kills real child processes mid-run and gates
// resume bit-identity — the process-level proof behind masc-verify -crash.
func TestCrashResumeGauntlet(t *testing.T) {
	if testing.Short() {
		t.Skip("forks and kills child processes; skipped in -short")
	}
	rep := CrashFleet(2, 7, Options{Logf: t.Logf}, []string{
		"-test.run=TestCrashChildHelper", "-test.v=false"})
	for _, r := range rep.Reports {
		for _, f := range r.Failures {
			name := "?"
			if r.Case != nil {
				name = r.Case.Name()
			}
			t.Errorf("%s %s: %s", name, r.Scenario, f)
		}
	}
	if rep.Failed == 0 && rep.Killed == 0 {
		// Every child finished before its trigger: the gauntlet degenerated
		// into plain resume tests. The throttles make this effectively
		// impossible; fail loudly rather than silently losing coverage.
		t.Fatal("no child was ever killed mid-run; kill triggers never landed")
	}
	t.Logf("crash gauntlet: %d runs, %d killed mid-run, %d failed",
		len(rep.Reports), rep.Killed, rep.Failed)
}
