package verify

import (
	"errors"
	"fmt"
	"math"

	"masc"
	"masc/internal/faultinject"
)

// Chaos verification: every case is re-run under deterministic fault
// injection and the outcome is classified against the fault-tolerance
// contract — a fault-injected pipeline must either finish with
// sensitivities BIT-IDENTICAL to the fault-free run (degrading to per-step
// recomputation where storage was damaged) or fail loudly with an error
// that names the failing step. Any other outcome is a chaos failure:
// silently wrong numbers, or an opaque error nobody can act on.

// ChaosOutcome classifies one fault-injected pipeline run.
type ChaosOutcome string

const (
	// OutcomeClean: the injector never fired (cadence missed every op);
	// the run is a plain pass and proves nothing about fault tolerance.
	OutcomeClean ChaosOutcome = "clean"
	// OutcomeDegraded: faults fired, the reverse sweep recomputed the
	// damaged steps, and the result is bit-identical to the baseline.
	OutcomeDegraded ChaosOutcome = "degraded"
	// OutcomeAbsorbed: faults fired but never surfaced — I/O retries
	// absorbed transient errors, or a corrupted blob was never on the
	// fetch path — and the result is bit-identical to the baseline.
	OutcomeAbsorbed ChaosOutcome = "absorbed"
	// OutcomeFailedLoud: the run failed with a diagnosable error — the
	// unwrap chain names the failing step or the injected fault.
	OutcomeFailedLoud ChaosOutcome = "failed-loud"
	// OutcomeSilent: the run "succeeded" with numbers that differ from
	// the fault-free baseline. The one unforgivable outcome.
	OutcomeSilent ChaosOutcome = "SILENT-CORRUPTION"
	// OutcomeOpaque: the run failed with an error that neither names a
	// step nor identifies the fault — undiagnosable in production.
	OutcomeOpaque ChaosOutcome = "opaque-error"
)

// chaosScenario is one fault profile applied to one storage configuration.
// budget > 0 promotes the run to the tiered store (SimOptions.MemBudgetBytes),
// so the faults land inside the tier ladder: hot-frame rot caught at demotion,
// blob corruption in the compressed/disk rungs, EIO on spill writes mid-demotion.
type chaosScenario struct {
	name    string
	storage masc.Storage
	async   bool
	budget  int64
	profile func(seed int64) faultinject.Profile
}

// chaosScenarios spans the fault surface: blob bit rot and truncation on
// every store kind, transient and hard I/O errors on the spill path, and a
// poisoned async compression worker. Cadences are primes so the fault
// positions drift across cases instead of pinning to the same steps.
func chaosScenarios() []chaosScenario {
	return []chaosScenario{
		{"bitflip-masc-sync", masc.StorageMASC, false, 0, func(s int64) faultinject.Profile {
			return faultinject.Profile{Name: "bitflip", Seed: s, BitFlipOneIn: 7}
		}},
		{"bitflip-masc-async", masc.StorageMASC, true, 0, func(s int64) faultinject.Profile {
			return faultinject.Profile{Name: "bitflip", Seed: s, BitFlipOneIn: 7}
		}},
		{"truncate-masc-sync", masc.StorageMASC, false, 0, func(s int64) faultinject.Profile {
			return faultinject.Profile{Name: "truncate", Seed: s, TruncateOneIn: 7}
		}},
		{"bitflip-memory", masc.StorageMemory, false, 0, func(s int64) faultinject.Profile {
			return faultinject.Profile{Name: "bitrot", Seed: s, BitFlipOneIn: 5}
		}},
		{"bitflip-disk", masc.StorageDisk, false, 0, func(s int64) faultinject.Profile {
			return faultinject.Profile{Name: "bitflip", Seed: s, BitFlipOneIn: 7}
		}},
		{"eio-transient-disk", masc.StorageDisk, false, 0, func(s int64) faultinject.Profile {
			// Single-shot failures: the disk layer's retry budget (4
			// attempts) must absorb every one of them.
			return faultinject.Profile{Name: "eio", Seed: s, FailOpEvery: 11, FailOpBurst: 1}
		}},
		{"eio-hard-disk", masc.StorageDisk, false, 0, func(s int64) faultinject.Profile {
			// Bursts longer than the retry budget: the op must fail with a
			// typed error, and the pipeline must degrade or abort loudly.
			return faultinject.Profile{Name: "eio-hard", Seed: s, FailOpEvery: 23, FailOpBurst: 8}
		}},
		{"worker-panic-async", masc.StorageMASC, true, 0, func(s int64) faultinject.Profile {
			// Every generated case has ≥ 15 steps, so the poisoned step is
			// always reached.
			return faultinject.Profile{Name: "panic", Seed: s, PanicAtStep: 1 + int(s%10)}
		}},

		// Tiered-store scenarios: an 8 KiB budget forces every case through
		// the whole ladder (hot -> compressed -> disk -> recompute), so the
		// injected faults land inside demotions, spill writes, and promoted
		// fetches rather than only at Put/Fetch boundaries.
		{"bitflip-tiered", masc.StorageMASC, false, 8 << 10, func(s int64) faultinject.Profile {
			// Rots hot frames after their CRC sidecar (caught at demotion,
			// never laundered into a sealed blob) and blobs after sealing
			// (caught at decode). Both heal through the repair ladder.
			return faultinject.Profile{Name: "bitflip", Seed: s, BitFlipOneIn: 5}
		}},
		{"truncate-tiered", masc.StorageMASC, false, 8 << 10, func(s int64) faultinject.Profile {
			return faultinject.Profile{Name: "truncate", Seed: s, TruncateOneIn: 5}
		}},
		{"eio-tiered-spill", masc.StorageMASC, false, 2 << 10, func(s int64) faultinject.Profile {
			// Single-shot spill-device failures during demotion and
			// reverse-sweep reads: the disk layer's retries absorb them.
			// The cost model sends only the cheapest handful of steps to
			// disk on these small cases, so the cadence is dense enough to
			// guarantee a hit on the few spill ops that happen.
			return faultinject.Profile{Name: "eio", Seed: s, FailOpEvery: 2, FailOpBurst: 1}
		}},
		{"eio-hard-tiered-demote", masc.StorageMASC, false, 2 << 10, func(s int64) faultinject.Profile {
			// A persistently dead device: every spill op fails through the
			// whole retry budget, killing the very first demotion's write
			// mid-flight. The store must mark the device dead and fall back
			// to deliberate drops (recompute), never abort the run.
			return faultinject.Profile{Name: "eio-hard", Seed: s, FailOpEvery: 1, FailOpBurst: 8}
		}},
		{"bitflip-tiered-tiny", masc.StorageMASC, false, 1 << 10, func(s int64) faultinject.Profile {
			// A 1 KiB budget drops nearly every step: corruption has to
			// survive a store that lives almost entirely on the recompute rung.
			return faultinject.Profile{Name: "bitflip", Seed: s, BitFlipOneIn: 7}
		}},
	}
}

// ChaosCaseReport is the outcome of one (case, scenario) pair.
type ChaosCaseReport struct {
	Case     *Case
	Scenario string
	Outcome  ChaosOutcome
	// Degraded is how many reverse-sweep steps fell back to recomputation.
	Degraded int
	// Faults is what the injector actually delivered.
	Faults faultinject.Stats
	// Detail carries the error text (failure outcomes) or a mismatch
	// description (silent corruption).
	Detail string
}

// Bad reports whether this outcome violates the fault-tolerance contract.
func (r *ChaosCaseReport) Bad() bool {
	return r.Outcome == OutcomeSilent || r.Outcome == OutcomeOpaque
}

// ChaosReport aggregates a chaos fleet.
type ChaosReport struct {
	Reports []*ChaosCaseReport
	Counts  map[ChaosOutcome]int
	// Failed counts contract violations (silent corruption or opaque
	// errors) plus infrastructure failures.
	Failed int
}

// OK reports whether no run violated the fault-tolerance contract.
func (r *ChaosReport) OK() bool { return r.Failed == 0 }

// failedStep walks err's unwrap chain for anything that names the step it
// failed at (jactensor.StepError, adjoint.DegradeError, ...).
func failedStep(err error) (int, bool) {
	for e := err; e != nil; e = errors.Unwrap(e) {
		if fs, ok := e.(interface{ FailedStep() int }); ok {
			return fs.FailedStep(), true
		}
	}
	return 0, false
}

// diagnosable reports whether a chaos-run error satisfies the "fail
// loudly" contract: it names the failing step, or at minimum identifies
// the injected fault.
func diagnosable(err error) bool {
	if _, ok := failedStep(err); ok {
		return true
	}
	return errors.Is(err, faultinject.ErrInjected)
}

// dodpEqual bit-compares two sensitivity matrices, returning a description
// of the first mismatch.
func dodpEqual(want, got [][]float64) (string, bool) {
	if len(want) != len(got) {
		return fmt.Sprintf("objective count %d vs %d", len(want), len(got)), false
	}
	for o := range want {
		if len(want[o]) != len(got[o]) {
			return fmt.Sprintf("obj %d param count %d vs %d", o, len(want[o]), len(got[o])), false
		}
		for k := range want[o] {
			if math.Float64bits(want[o][k]) != math.Float64bits(got[o][k]) {
				return fmt.Sprintf("obj %d param %d: %g vs %g", o, k, got[o][k], want[o][k]), false
			}
		}
	}
	return "", true
}

// simulateChaos rebuilds the case and runs it under one storage
// configuration with an optional fault injector attached to the store.
func simulateChaos(c *Case, o Options, sc chaosScenario, inj *faultinject.Injector) (*masc.Run, error) {
	bt, err := c.Build()
	if err != nil {
		return nil, err
	}
	opt := bt.SimBase
	opt.Storage = sc.storage
	opt.Workers = o.Workers
	opt.Async = sc.async
	opt.PipelineDepth = o.PipelineDepth
	opt.AdjointWindows = o.AdjointWindows
	if sc.budget > 0 {
		opt.MemBudgetBytes = sc.budget
		if o.MemBudgetBytes > 0 {
			opt.MemBudgetBytes = o.MemBudgetBytes
		}
	}
	opt.Fault = inj
	return masc.Simulate(bt.Ckt, opt, bt.Objectives, nil)
}

// chaosCase classifies one fault-injected run against its fault-free
// baseline. The baseline is computed lazily — only when the faulted run
// finishes and its numbers need a reference.
func chaosCase(c *Case, sc chaosScenario, opt Options) *ChaosCaseReport {
	rep := &ChaosCaseReport{Case: c, Scenario: sc.name}
	inj := faultinject.New(sc.profile(c.Seed))
	run, err := simulateChaos(c, opt, sc, inj)
	rep.Faults = inj.Stats()

	if err != nil {
		if diagnosable(err) {
			rep.Outcome = OutcomeFailedLoud
		} else {
			rep.Outcome = OutcomeOpaque
		}
		rep.Detail = err.Error()
		return rep
	}
	rep.Degraded = len(run.Sens.DegradedSteps)

	base, berr := simulateChaos(c, opt, sc, nil)
	if berr != nil {
		rep.Outcome = OutcomeOpaque
		rep.Detail = fmt.Sprintf("fault-free baseline failed: %v", berr)
		return rep
	}
	if detail, same := dodpEqual(base.Sens.DOdp, run.Sens.DOdp); !same {
		rep.Outcome = OutcomeSilent
		rep.Detail = detail
		return rep
	}
	switch {
	case !rep.Faults.Any():
		rep.Outcome = OutcomeClean
	case rep.Degraded > 0:
		rep.Outcome = OutcomeDegraded
	default:
		rep.Outcome = OutcomeAbsorbed
	}
	return rep
}

// ChaosFleet runs every scenario against n seeded cases and aggregates the
// outcome distribution. A passing fleet proves the no-silent-corruption
// property over the whole fault surface: every injected fault either
// degraded transparently, was absorbed below the API, or failed loudly.
func ChaosFleet(n int, seed int64, opt Options) *ChaosReport {
	opt = opt.withDefaults()
	cr := &ChaosReport{Counts: map[ChaosOutcome]int{}}
	scenarios := chaosScenarios()
	for _, c := range Cases(n, seed) {
		for _, sc := range scenarios {
			rep := chaosCase(c, sc, opt)
			cr.Reports = append(cr.Reports, rep)
			cr.Counts[rep.Outcome]++
			if rep.Bad() {
				cr.Failed++
			}
			if opt.Logf != nil {
				opt.Logf("%-22s %-20s %-18s degraded=%-3d faults={blobs:%d ops:%d panics:%d} %s",
					c.Name(), sc.name, string(rep.Outcome), rep.Degraded,
					rep.Faults.BlobsCorrupted, rep.Faults.OpsFailed, rep.Faults.Panics, rep.Detail)
			}
		}
	}
	return cr
}
