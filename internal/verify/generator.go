// Package verify implements the differential verification harness for the
// MASC pipeline: seeded randomized circuits are run through the full
// transient+adjoint flow under every Jacobian storage strategy, and the
// results are required to be bit-identical to the dense in-RAM oracle and
// consistent with the direct (forward) method and finite differences.
//
// The harness exists because MASC's whole value proposition is that the
// compressed tensor store is *lossless*: if Algorithm 2's reverse sweep
// sees even one perturbed Jacobian bit, the computed sensitivities are
// silently wrong. Every codec or store change must survive this gauntlet.
package verify

import (
	"fmt"
	"math"
	"math/rand"

	"masc"
)

// Families enumerates the circuit families the generator cycles through.
// Every fleet of ≥ len(Families) cases exercises each family at least once.
var Families = []string{
	"rc-ladder",
	"rlc-mesh",
	"rlc-random",
	"diode-clipper",
	"bjt-chain",
	"mos-chain",
	"mixed",
}

// Case is one deterministic randomized verification circuit. Build
// reconstructs the circuit afresh on every call from Seed alone, so
// differential runs never share mutable device or matrix state.
type Case struct {
	Index  int
	Seed   int64
	Family string
}

// Cases derives n case seeds from one master seed. Families are assigned
// round-robin so every fleet covers the full device-model mix; everything
// else (topology, element values, waveforms, timestep schedule, objectives)
// is drawn from the per-case seed inside Build.
func Cases(n int, seed int64) []*Case {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Case, n)
	for i := range out {
		out[i] = &Case{
			Index:  i,
			Seed:   rng.Int63(),
			Family: Families[i%len(Families)],
		}
	}
	return out
}

// Name labels the case for reports.
func (c *Case) Name() string { return fmt.Sprintf("case%03d/%s", c.Index, c.Family) }

// Built is a freshly constructed verification circuit with its analysis
// configuration. SimBase carries the time axis and tightened solver
// tolerances; the caller fills in the storage strategy under test.
type Built struct {
	Ckt        *masc.Circuit
	Objectives []masc.Objective
	SimBase    masc.SimOptions
	Steps      int
}

// logUniform draws from [lo, hi] uniformly in log space.
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo * math.Exp(rng.Float64()*math.Log(hi/lo))
}

// randWave draws a source waveform whose dynamics resolve on the given
// time axis (frequencies are expressed in whole cycles per TStop).
func randWave(rng *rand.Rand, tstop float64) masc.Waveform {
	switch rng.Intn(4) {
	case 0:
		return masc.DC(0.3 + rng.Float64()*1.2)
	case 1:
		cycles := float64(1 + rng.Intn(4))
		return masc.Sin{
			VO:   rng.Float64() * 0.3,
			VA:   0.3 + rng.Float64()*0.9,
			Freq: cycles / tstop,
			TD:   rng.Float64() * 0.1 * tstop,
		}
	case 2:
		return masc.Pulse{
			V1: 0,
			V2: 0.4 + rng.Float64(),
			TD: 0.05 * tstop,
			TR: (0.05 + rng.Float64()*0.1) * tstop,
			TF: (0.05 + rng.Float64()*0.1) * tstop,
			PW: (0.2 + rng.Float64()*0.2) * tstop,
			PE: tstop,
		}
	default:
		k := 3 + rng.Intn(3)
		ts := make([]float64, k)
		vs := make([]float64, k)
		for i := range ts {
			ts[i] = tstop * float64(i) / float64(k-1)
			vs[i] = rng.Float64() * 1.2
		}
		return masc.PWL{T: ts, V: vs}
	}
}

// Build generates the circuit. The same Case always builds the same
// circuit, bit for bit.
func (c *Case) Build() (*Built, error) {
	rng := rand.New(rand.NewSource(c.Seed))

	steps := 15 + rng.Intn(40)
	tstep := logUniform(rng, 1e-7, 1e-5)
	tstop := float64(steps) * tstep

	b := masc.NewBuilder()
	var probe []string // node names eligible as objective probes

	switch c.Family {
	case "rc-ladder":
		probe = genRCLadder(rng, b, tstop)
	case "rlc-mesh":
		probe = genRLCMesh(rng, b, tstop)
	case "rlc-random":
		probe = genRLCRandom(rng, b, tstop)
	case "diode-clipper":
		probe = genDiodeClipper(rng, b, tstop)
	case "bjt-chain":
		probe = genBJTChain(rng, b, tstop)
	case "mos-chain":
		probe = genMOSChain(rng, b, tstop)
	case "mixed":
		probe = genMixed(rng, b, tstop)
	default:
		return nil, fmt.Errorf("verify: unknown family %q", c.Family)
	}

	ckt, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("verify: %s: %w", c.Name(), err)
	}

	// 1–3 objectives across the anchored/mid-step/integral classes.
	nObj := 1 + rng.Intn(3)
	objs := make([]masc.Objective, 0, nObj)
	for len(objs) < nObj {
		name := probe[rng.Intn(len(probe))]
		node, err := b.NodeIndex(name)
		if err != nil {
			return nil, fmt.Errorf("verify: %s: probe %q: %w", c.Name(), name, err)
		}
		o := masc.Objective{
			Name:   fmt.Sprintf("v(%s)#%d", name, len(objs)),
			Node:   node,
			Weight: 1 + rng.Float64(),
		}
		switch rng.Intn(3) {
		case 1:
			o.Step = 1 + rng.Intn(steps) // mid-trajectory anchor
		case 2:
			o.Integral = true
		}
		objs = append(objs, o)
	}

	method := masc.MethodBE
	if rng.Intn(10) < 3 {
		method = masc.MethodTrap
	}
	opt := masc.SimOptions{
		TStep: tstep,
		TStop: tstop,
		Transient: masc.TransientOptions{
			Method: method,
			// Tight Newton tolerances: the finite-difference cross-check
			// differentiates the *discrete* solution, so solver noise must
			// sit well below the FD signal.
			AbsTol:    1e-13,
			RelTol:    1e-11,
			MaxNewton: 200,
		},
	}
	return &Built{Ckt: ckt, Objectives: objs, SimBase: opt, Steps: steps}, nil
}

// genRCLadder: source → R/C ladder of random length with randomly scattered
// shunt resistors.
func genRCLadder(rng *rand.Rand, b *masc.Builder, tstop float64) []string {
	n := 3 + rng.Intn(12)
	b.AddVSource("vin", "n0", "0", randWave(rng, tstop))
	probe := []string{"n0"}
	for i := 1; i <= n; i++ {
		prev := fmt.Sprintf("n%d", i-1)
		cur := fmt.Sprintf("n%d", i)
		b.AddResistor(fmt.Sprintf("r%d", i), prev, cur, logUniform(rng, 100, 1e4))
		// Time constants within a decade of the step so the trajectory
		// actually moves and the C matrix carries weight.
		b.AddCapacitor(fmt.Sprintf("c%d", i), cur, "0", logUniform(rng, 1e-10, 1e-8))
		if rng.Intn(3) == 0 {
			b.AddResistor(fmt.Sprintf("rg%d", i), cur, "0", logUniform(rng, 1e3, 1e5))
		}
		probe = append(probe, cur)
	}
	return probe
}

// genRLCMesh: a rows×cols resistive grid with shunt caps and a few series
// inductors (branch-current unknowns).
func genRLCMesh(rng *rand.Rand, b *masc.Builder, tstop float64) []string {
	rows, cols := 2+rng.Intn(3), 2+rng.Intn(3)
	name := func(r, c int) string { return fmt.Sprintf("m%d_%d", r, c) }
	b.AddVSource("vin", name(0, 0), "0", randWave(rng, tstop))
	var probe []string
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			probe = append(probe, name(r, c))
			if c+1 < cols {
				b.AddResistor(fmt.Sprintf("rh%d_%d", r, c), name(r, c), name(r, c+1),
					logUniform(rng, 100, 5e3))
			}
			if r+1 < rows {
				if rng.Intn(4) == 0 {
					b.AddInductor(fmt.Sprintf("lv%d_%d", r, c), name(r, c), name(r+1, c),
						logUniform(rng, 1e-7, 1e-5))
				} else {
					b.AddResistor(fmt.Sprintf("rv%d_%d", r, c), name(r, c), name(r+1, c),
						logUniform(rng, 100, 5e3))
				}
			}
			b.AddCapacitor(fmt.Sprintf("cg%d_%d", r, c), name(r, c), "0",
				logUniform(rng, 1e-10, 1e-8))
		}
	}
	// Anchor the far corner so every row has a DC path.
	b.AddResistor("rload", name(rows-1, cols-1), "0", logUniform(rng, 1e3, 1e4))
	return probe
}

// genRLCRandom: a random connected linear graph — every node joins the
// backbone through an earlier node, guaranteeing a DC path to the source.
func genRLCRandom(rng *rand.Rand, b *masc.Builder, tstop float64) []string {
	n := 4 + rng.Intn(14)
	b.AddVSource("vin", "n0", "0", randWave(rng, tstop))
	probe := []string{"n0"}
	for i := 1; i < n; i++ {
		cur := fmt.Sprintf("n%d", i)
		parent := fmt.Sprintf("n%d", rng.Intn(i))
		b.AddResistor(fmt.Sprintf("rt%d", i), parent, cur, logUniform(rng, 100, 1e4))
		b.AddCapacitor(fmt.Sprintf("cg%d", i), cur, "0", logUniform(rng, 1e-10, 1e-8))
		probe = append(probe, cur)
	}
	// Extra cross edges: resistors, coupling caps, the odd inductor to
	// ground, and a small-gm VCCS for unsymmetric pattern structure.
	extra := n / 2
	for e := 0; e < extra; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		a, z := fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", j)
		switch rng.Intn(4) {
		case 0:
			b.AddResistor(fmt.Sprintf("rx%d", e), a, z, logUniform(rng, 500, 2e4))
		case 1:
			b.AddCapacitor(fmt.Sprintf("cx%d", e), a, z, logUniform(rng, 1e-11, 1e-9))
		case 2:
			// Never hang an inductor off the source-driven node n0: at DC
			// it would short the voltage source and make MNA singular.
			if i == 0 {
				continue
			}
			b.AddInductor(fmt.Sprintf("lx%d", e), a, "0", logUniform(rng, 1e-6, 1e-4))
		default:
			// gm small enough that every feedback loop through the
			// resistor range stays below unity gain — keeps the random
			// graph's DC solvable for any topology draw.
			b.AddVCCS(fmt.Sprintf("gx%d", e), a, "0", z, "0", logUniform(rng, 1e-7, 3e-6))
		}
	}
	return probe
}

// genDiodeClipper: cascaded RC stages with diode clamps to ground — mild
// exponential nonlinearity on every stage.
func genDiodeClipper(rng *rand.Rand, b *masc.Builder, tstop float64) []string {
	n := 2 + rng.Intn(5)
	b.AddVSource("vin", "n0", "0", randWave(rng, tstop))
	probe := []string{"n0"}
	for i := 1; i <= n; i++ {
		prev := fmt.Sprintf("n%d", i-1)
		cur := fmt.Sprintf("n%d", i)
		b.AddResistor(fmt.Sprintf("r%d", i), prev, cur, logUniform(rng, 500, 5e3))
		b.AddCapacitor(fmt.Sprintf("c%d", i), cur, "0", logUniform(rng, 1e-10, 1e-8))
		b.AddDiode(fmt.Sprintf("d%d", i), cur, "0")
		if rng.Intn(2) == 0 {
			b.AddResistor(fmt.Sprintf("rg%d", i), cur, "0", logUniform(rng, 2e3, 2e4))
		}
		probe = append(probe, cur)
	}
	return probe
}

// genBJTChain: common-emitter stages with randomized bias dividers, like
// workload.BJTChain but with per-case element values.
func genBJTChain(rng *rand.Rand, b *masc.Builder, tstop float64) []string {
	stages := 1 + rng.Intn(3)
	b.AddVSource("vcc", "vcc", "0", masc.DC(3+rng.Float64()*2))
	b.AddVSource("vin", "in", "0", randWave(rng, tstop))
	in := "in"
	probe := []string{"in"}
	for s := 0; s < stages; s++ {
		base := fmt.Sprintf("b%d", s)
		coll := fmt.Sprintf("q%d", s)
		emit := fmt.Sprintf("e%d", s)
		b.AddResistor(fmt.Sprintf("rin%d", s), in, base, logUniform(rng, 1e3, 1e4))
		b.AddResistor(fmt.Sprintf("rb1_%d", s), "vcc", base, logUniform(rng, 2e4, 1e5))
		b.AddResistor(fmt.Sprintf("rb2_%d", s), base, "0", logUniform(rng, 5e3, 3e4))
		b.AddResistor(fmt.Sprintf("rc%d", s), "vcc", coll, logUniform(rng, 1e3, 5e3))
		b.AddResistor(fmt.Sprintf("re%d", s), emit, "0", logUniform(rng, 200, 1e3))
		b.AddBJT(fmt.Sprintf("t%d", s), coll, base, emit)
		b.AddCapacitor(fmt.Sprintf("cl%d", s), coll, "0", logUniform(rng, 1e-10, 1e-9))
		probe = append(probe, base, coll, emit)
		in = coll
	}
	return probe
}

// genMOSChain: NMOS common-source stages with resistive loads.
func genMOSChain(rng *rand.Rand, b *masc.Builder, tstop float64) []string {
	stages := 1 + rng.Intn(3)
	vdd := 2.5 + rng.Float64()*2
	b.AddVSource("vdd", "vdd", "0", masc.DC(vdd))
	b.AddVSource("vin", "g0", "0", masc.Sin{
		VO:   vdd / 2,
		VA:   0.2 + rng.Float64()*0.4,
		Freq: float64(1+rng.Intn(3)) / tstop,
	})
	gate := "g0"
	probe := []string{"g0"}
	for s := 0; s < stages; s++ {
		drain := fmt.Sprintf("d%d", s)
		b.AddResistor(fmt.Sprintf("rl%d", s), "vdd", drain, logUniform(rng, 2e3, 2e4))
		b.AddMOSFET(fmt.Sprintf("m%d", s), drain, gate, "0")
		b.AddCapacitor(fmt.Sprintf("cl%d", s), drain, "0", logUniform(rng, 1e-11, 1e-9))
		// Bias the next gate off a divider from the drain so cascaded
		// stages stay in a solvable region.
		next := fmt.Sprintf("g%d", s+1)
		b.AddResistor(fmt.Sprintf("rd%d", s), drain, next, logUniform(rng, 1e3, 1e4))
		b.AddResistor(fmt.Sprintf("rg%d", s), next, "0", logUniform(rng, 1e4, 1e5))
		probe = append(probe, drain, next)
		gate = next
	}
	return probe
}

// genMixed: an RC ladder spine with diodes, a VCCS and a VCVS hung off it —
// the widest single-circuit device mix.
func genMixed(rng *rand.Rand, b *masc.Builder, tstop float64) []string {
	probe := genRCLadder(rng, b, tstop)
	n := len(probe)
	pick := func() string { return probe[rng.Intn(n)] }
	// probe[1:] — a diode clamped straight across the voltage source has no
	// series resistance to limit e^{v/vt}; DC Newton cannot converge on it.
	b.AddDiode("dm", probe[1+rng.Intn(n-1)], "0")
	b.AddVCCS("gm", pick(), "0", pick(), "0", logUniform(rng, 1e-7, 3e-6))
	if rng.Intn(2) == 0 {
		b.AddVCVS("em", fmt.Sprintf("nv%d", n), "0", pick(), "0", 0.5+rng.Float64())
		b.AddResistor("rem", fmt.Sprintf("nv%d", n), "0", logUniform(rng, 1e3, 1e4))
	}
	if rng.Intn(2) == 0 {
		// probe[1:] — the source-driven node n0 must not get a DC short.
		b.AddInductor("lm", probe[1+rng.Intn(n-1)], "0", logUniform(rng, 1e-6, 1e-4))
	}
	return probe
}
