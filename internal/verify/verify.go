package verify

import (
	"fmt"
	"math"
	"math/rand"

	"masc"
	"masc/internal/compress/masczip"
	"masc/internal/jactensor"
	"masc/internal/sparse"
	"masc/internal/transient"
)

// Options configures a verification run.
type Options struct {
	// Workers is the masczip worker count used by the compressed runs.
	Workers int
	// PipelineDepth is the async store's queue depth (<1 = default).
	PipelineDepth int
	// AdjointWindows is passed through to SimOptions.AdjointWindows for
	// the chaos gauntlet's runs: W > 1 exercises the fault scenarios under
	// concurrent window sweeps (which must still finish bit-identical to
	// the fault-free baseline).
	AdjointWindows int
	// MemBudgetBytes, when > 0, overrides the budget of the tiered-store
	// chaos scenarios (masc-verify -mem-budget). Scenarios without a budget
	// (plain memory/disk/masc runs) are unaffected, so the fault surface of
	// the untiered stores stays covered. The fault-free baseline shares the
	// same budget, keeping the bit-compare meaningful.
	MemBudgetBytes int64
	// FDChecks bounds how many parameters per case are cross-checked
	// against central finite differences; 0 disables the FD layer.
	FDChecks int
	// FDTol is the finite-difference relative tolerance (default 1e-6).
	FDTol float64
	// DirectTol is the adjoint-vs-direct relative tolerance (default 1e-4).
	// This layer compares two exact derivatives of the same discrete
	// system, but both pass through LU solves of J = G + C/h, so the
	// achievable agreement is cond(J)·eps — on stiff RLC draws that can
	// legitimately reach ~1e-6. Exponential-device saturation currents are
	// worse still: ∂f/∂Is ~ e^{v/vt} can exceed 1e11, and both methods
	// accumulate (then cancel) terms of that magnitude, leaving relative
	// noise of order eps·e^{v/vt} ≈ 1e-5 in whichever method cancels less
	// cleanly. The default sits one decade above the worst of those.
	DirectTol float64
	// Logf, when non-nil, receives per-case progress lines.
	Logf func(format string, args ...interface{})
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.FDTol == 0 {
		o.FDTol = 1e-6
	}
	if o.DirectTol == 0 {
		o.DirectTol = 1e-4
	}
	return o
}

// CaseReport is the outcome of one case. Failures lists every check that
// did not hold; an empty list means the case passed.
type CaseReport struct {
	Case         *Case
	Steps        int
	Unknowns     int
	Params       int
	FDChecked    int
	FDSkipped    int
	MaxFDErr     float64
	MaxDirectErr float64
	Failures     []string
}

// OK reports whether every check passed.
func (r *CaseReport) OK() bool { return len(r.Failures) == 0 }

func (r *CaseReport) failf(format string, args ...interface{}) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// relErr is the scaled relative discrepancy between two sensitivities:
// the difference over max(|a|, |b|, scale). The scale floor keeps params
// whose sensitivity is many orders below the objective's dominant one from
// failing on numerical noise.
func relErr(a, b, scale float64) float64 {
	den := math.Max(math.Max(math.Abs(a), math.Abs(b)), scale)
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// objScales returns, per objective, 1e-3 × the largest |dO/dp| — the noise
// floor used by relErr.
func objScales(dodp [][]float64) []float64 {
	out := make([]float64, len(dodp))
	for o, row := range dodp {
		m := 0.0
		for _, v := range row {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		out[o] = m * 1e-3
	}
	return out
}

// paramScales returns, per parameter, 1e-3 × the largest |dO/dp| across
// objectives. Roundoff in a sensitivity solve is proportional to the largest
// intermediate the parameter's forward state (or adjoint accumulation)
// carries, not to the final entry: a BJT with Is = 1e-16 produces per-state
// sensitivities of order 1e9, so an entry whose true value is ~0 (e.g. a
// source-pinned node) legitimately reads as eps × that column magnitude.
func paramScales(dodp [][]float64) []float64 {
	if len(dodp) == 0 {
		return nil
	}
	out := make([]float64, len(dodp[0]))
	for _, row := range dodp {
		for k, v := range row {
			if a := math.Abs(v) * 1e-3; a > out[k] {
				out[k] = a
			}
		}
	}
	return out
}

// objNoiseScale returns the magnitude whose floating-point granularity bounds
// how precisely an objective can be evaluated from a solved trajectory. State
// noise is absolute-scaled (LU roundoff and Newton tolerance are proportional
// to the largest state in the system, not the probe node's), so an objective
// whose value sits far below Weight · max|x| cannot be resolved better than
// ulps of that product — even when |O| itself is microscopic, e.g. a Step
// objective anchored inside a pulse source's delay.
func objNoiseScale(tr *masc.TransientResult, o masc.Objective) float64 {
	xmax := 0.0
	for _, x := range tr.States {
		for _, v := range x {
			if a := math.Abs(v); a > xmax {
				xmax = a
			}
		}
	}
	s := math.Abs(o.Weight) * xmax
	if o.Integral {
		s *= tr.Times[tr.Steps()] - tr.Times[0]
	}
	return math.Max(math.Abs(objValue(tr, o)), s)
}

// objValue evaluates an objective directly on a trajectory — the quantity
// the adjoint differentiates, used by the finite-difference layer.
func objValue(tr *masc.TransientResult, o masc.Objective) float64 {
	n := tr.Steps()
	if o.Integral {
		s := 0.0
		for i := 1; i <= n; i++ {
			s += tr.Hs[i] * tr.States[i][o.Node]
		}
		return o.Weight * s
	}
	step := n
	if o.Step > 0 && o.Step <= n {
		step = o.Step
	}
	return o.Weight * tr.States[step][o.Node]
}

// simulate rebuilds the case from scratch and runs the full pipeline under
// one storage configuration.
func simulate(c *Case, o Options, storage masc.Storage, async bool) (*masc.Run, *Built, error) {
	bt, err := c.Build()
	if err != nil {
		return nil, nil, err
	}
	opt := bt.SimBase
	opt.Storage = storage
	opt.Workers = o.Workers
	opt.Async = async
	opt.PipelineDepth = o.PipelineDepth
	run, err := masc.Simulate(bt.Ckt, opt, bt.Objectives, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("%s storage=%s async=%v: %w", c.Name(), storage, async, err)
	}
	return run, bt, nil
}

// compareDOdp bit-compares two sensitivity matrices.
func compareDOdp(r *CaseReport, label string, want, got [][]float64) {
	if len(want) != len(got) {
		r.failf("%s: objective count %d vs %d", label, len(want), len(got))
		return
	}
	for o := range want {
		if len(want[o]) != len(got[o]) {
			r.failf("%s: obj %d param count %d vs %d", label, o, len(want[o]), len(got[o]))
			return
		}
		for k := range want[o] {
			if math.Float64bits(want[o][k]) != math.Float64bits(got[o][k]) {
				r.failf("%s: obj %d param %d: %x vs %x (Δ=%g)", label, o, k,
					math.Float64bits(want[o][k]), math.Float64bits(got[o][k]),
					got[o][k]-want[o][k])
				return
			}
		}
	}
}

// VerifyCase runs the full differential matrix on one case:
//
//  1. the pipeline four ways — dense in-RAM oracle, recompute, sync
//     compressed, async compressed — with bit-identical sensitivities
//     required across all four;
//  2. a store-level sweep over one shared forward run, requiring
//     bit-identical Jacobian fetches from dense, sync and async stores;
//  3. the direct (forward) sensitivity method within DirectTol;
//  4. central finite differences with Richardson extrapolation on a
//     parameter subset within FDTol.
//
// The returned error reports infrastructure failure (the case could not be
// built or the oracle itself did not converge); verification mismatches are
// reported in CaseReport.Failures.
func VerifyCase(c *Case, opt Options) (*CaseReport, error) {
	opt = opt.withDefaults()
	rep := &CaseReport{Case: c}

	dense, bt, err := simulate(c, opt, masc.StorageMemory, false)
	if err != nil {
		return rep, err
	}
	rep.Steps = dense.Tran.Steps()
	rep.Unknowns = bt.Ckt.N
	rep.Params = len(bt.Ckt.Params())

	recomp, _, err := simulate(c, opt, masc.StorageRecompute, false)
	if err != nil {
		rep.failf("recompute run: %v", err)
	} else {
		compareDOdp(rep, "recompute vs dense", dense.Sens.DOdp, recomp.Sens.DOdp)
	}

	sync, _, err := simulate(c, opt, masc.StorageMASC, false)
	if err != nil {
		rep.failf("sync compressed run: %v", err)
	} else {
		compareDOdp(rep, "sync-masc vs dense", dense.Sens.DOdp, sync.Sens.DOdp)
		if sync.TensorStats.Steps != dense.TensorStats.Steps {
			rep.failf("sync store steps %d vs dense %d", sync.TensorStats.Steps, dense.TensorStats.Steps)
		}
	}

	async, _, err := simulate(c, opt, masc.StorageMASC, true)
	if err != nil {
		rep.failf("async compressed run: %v", err)
	} else {
		compareDOdp(rep, "async-masc vs dense", dense.Sens.DOdp, async.Sens.DOdp)
		if sync != nil {
			if async.TensorStats.Steps != sync.TensorStats.Steps {
				rep.failf("async store steps %d vs sync %d", async.TensorStats.Steps, sync.TensorStats.Steps)
			}
			if async.TensorStats.StoredBytes != sync.TensorStats.StoredBytes {
				rep.failf("async stored %d bytes vs sync %d: pipelines diverged",
					async.TensorStats.StoredBytes, sync.TensorStats.StoredBytes)
			}
		}
	}

	verifyAuto(c, opt, rep, dense)
	verifyStores(c, opt, rep)
	verifyDirect(c, opt, rep, dense)
	if opt.FDChecks > 0 {
		verifyFD(c, opt, rep, dense)
	}
	return rep, nil
}

// verifyAuto runs the adaptive-codec storage through every execution mode —
// sync, async, windowed reverse sweeps, and a tiered memory budget — and
// requires bit-identical sensitivities against the dense oracle for all of
// them. The auto trial buffers and replays the first captured steps, so any
// replay divergence (wrong codec state, lost step, reordered Put) surfaces
// here as a bit mismatch.
func verifyAuto(c *Case, opt Options, rep *CaseReport, dense *masc.Run) {
	runMode := func(label string, mutate func(*masc.SimOptions)) *masc.Run {
		bt, err := c.Build()
		if err != nil {
			rep.failf("auto %s rebuild: %v", label, err)
			return nil
		}
		so := bt.SimBase
		so.Storage = masc.StorageAuto
		so.Workers = opt.Workers
		so.PipelineDepth = opt.PipelineDepth
		if mutate != nil {
			mutate(&so)
		}
		run, err := masc.Simulate(bt.Ckt, so, bt.Objectives, nil)
		if err != nil {
			rep.failf("auto %s run: %v", label, err)
			return nil
		}
		compareDOdp(rep, "auto-"+label+" vs dense", dense.Sens.DOdp, run.Sens.DOdp)
		return run
	}

	if sync := runMode("sync", nil); sync != nil {
		if sync.SelectedCodec == "" {
			rep.failf("auto-sync: no codec selected")
		}
		if sync.TensorStats.Steps != dense.TensorStats.Steps {
			rep.failf("auto-sync store steps %d vs dense %d",
				sync.TensorStats.Steps, dense.TensorStats.Steps)
		}
		if async := runMode("async", func(so *masc.SimOptions) { so.Async = true }); async != nil {
			if async.SelectedCodec == "" {
				rep.failf("auto-async: no codec selected")
			}
			// The winner is a timing call (bytes saved per second), so sync
			// and async runs may legitimately crown different codecs; but
			// when they agree, the committed blob streams must be identical.
			if async.SelectedCodec == sync.SelectedCodec &&
				async.TensorStats.StoredBytes != sync.TensorStats.StoredBytes {
				rep.failf("auto-async stored %d bytes vs sync %d under the same codec %q: pipelines diverged",
					async.TensorStats.StoredBytes, sync.TensorStats.StoredBytes, sync.SelectedCodec)
			}
		}
	}

	windows := opt.AdjointWindows
	if windows <= 1 {
		windows = 3
	}
	runMode("windows", func(so *masc.SimOptions) { so.AdjointWindows = windows })

	budget := opt.MemBudgetBytes
	if budget <= 0 {
		// Tight enough to force demotions on every verification case while
		// leaving the hot tier usable.
		budget = 1 << 20
	}
	if tiered := runMode("budget", func(so *masc.SimOptions) { so.MemBudgetBytes = budget }); tiered != nil {
		if tiered.SelectedCodec != "" {
			rep.failf("auto-budget: trial ran under a budget (selected %q); it must be inert",
				tiered.SelectedCodec)
		}
	}
}

// verifyStores runs ONE forward integration captured into three stores at
// once, then walks the reverse sweep's fetch order asserting bit-identical
// J and C values from every store — the tightest possible statement of
// "the compressor is lossless where it matters".
func verifyStores(c *Case, opt Options, rep *CaseReport) {
	bt, err := c.Build()
	if err != nil {
		rep.failf("store-level rebuild: %v", err)
		return
	}
	ckt := bt.Ckt
	mo := masczip.Options{Workers: opt.Workers}
	mem := jactensor.NewMemStore()
	syncSt := jactensor.NewCompressedStore(
		masczip.New(ckt.JPat, mo), masczip.New(ckt.CPat, mo), ckt.JPat, ckt.CPat)
	asyncSt := jactensor.NewCompressedStoreAsync(
		masczip.New(ckt.JPat, mo), masczip.New(ckt.CPat, mo), ckt.JPat, ckt.CPat, opt.PipelineDepth)
	stores := []struct {
		name string
		st   jactensor.Store
	}{{"dense", mem}, {"sync", syncSt}, {"async", asyncSt}}
	defer func() {
		for _, s := range stores {
			s.st.Close()
		}
	}()

	topt := bt.SimBase.Transient
	topt.TStep = bt.SimBase.TStep
	topt.TStop = bt.SimBase.TStop
	topt.Capture = func(step int, tm float64, x []float64, J, C *sparse.Matrix) error {
		for _, s := range stores {
			if err := s.st.Put(step, J.Val, C.Val); err != nil {
				return fmt.Errorf("capture into %s: %w", s.name, err)
			}
		}
		return nil
	}
	tr, err := transient.Run(ckt, topt)
	if err != nil {
		rep.failf("store-level forward run: %v", err)
		return
	}
	for _, s := range stores {
		if err := s.st.EndForward(); err != nil {
			rep.failf("%s EndForward: %v", s.name, err)
			return
		}
	}
	n := tr.Steps()
	for i := n; i >= 0; i-- {
		jw, cw, err := mem.Fetch(i)
		if err != nil {
			rep.failf("dense fetch %d: %v", i, err)
			return
		}
		for _, s := range stores[1:] {
			jg, cg, err := s.st.Fetch(i)
			if err != nil {
				rep.failf("%s fetch %d: %v", s.name, i, err)
				return
			}
			if k := firstBitDiff(jw, jg); k >= 0 {
				rep.failf("%s step %d J[%d]: %x vs %x", s.name, i, k,
					math.Float64bits(jw[k]), math.Float64bits(jg[k]))
				return
			}
			if k := firstBitDiff(cw, cg); k >= 0 {
				rep.failf("%s step %d C[%d]: %x vs %x", s.name, i, k,
					math.Float64bits(cw[k]), math.Float64bits(cg[k]))
				return
			}
		}
		if i < n {
			for _, s := range stores {
				s.st.Release(i + 1)
			}
		}
	}
	for _, s := range stores {
		s.st.Release(0)
	}
	ss, as := syncSt.Stats(), asyncSt.Stats()
	if ss.Steps != as.Steps || ss.RawBytes != as.RawBytes || ss.StoredBytes != as.StoredBytes {
		rep.failf("store stats diverge: sync {steps %d raw %d stored %d} vs async {steps %d raw %d stored %d}",
			ss.Steps, ss.RawBytes, ss.StoredBytes, as.Steps, as.RawBytes, as.StoredBytes)
	}
}

// firstBitDiff returns the first index where a and b differ bitwise, or -1.
func firstBitDiff(a, b []float64) int {
	if len(a) != len(b) {
		return 0
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i
		}
	}
	return -1
}

// verifyDirect cross-checks the adjoint against the direct (forward)
// sensitivity method — an independent derivation of the same discrete
// derivative, so agreement must be near machine precision.
func verifyDirect(c *Case, opt Options, rep *CaseReport, dense *masc.Run) {
	bt, err := c.Build()
	if err != nil {
		rep.failf("direct rebuild: %v", err)
		return
	}
	topt := bt.SimBase.Transient
	topt.TStep = bt.SimBase.TStep
	topt.TStop = bt.SimBase.TStop
	tr, err := masc.RunTransient(bt.Ckt, topt)
	if err != nil {
		rep.failf("direct forward run: %v", err)
		return
	}
	dir, err := masc.DirectSensitivities(bt.Ckt, tr, bt.Objectives, nil)
	if err != nil {
		rep.failf("direct method: %v", err)
		return
	}
	scales := objScales(dense.Sens.DOdp)
	pscales := paramScales(dense.Sens.DOdp)
	params := bt.Ckt.Params()
	noise := make([]float64, len(bt.Objectives))
	for o := range bt.Objectives {
		noise[o] = objNoiseScale(dense.Tran, bt.Objectives[o])
	}
	const eps = 2.220446049250313e-16
	for o := range dense.Sens.DOdp {
		for k := range dense.Sens.DOdp[o] {
			ad, dv := dense.Sens.DOdp[o][k], dir.DOdp[o][k]
			// Elasticity gate: if moving the parameter by its own full
			// magnitude changes the objective by less than ~1000 ulps of the
			// objective's noise scale, the entry is below what either method
			// can resolve — a diode with Is = 1e-14 and |dO/dIs| ≈ 0.1 has
			// elasticity 1e-15, pure cancellation residue on both sides. A
			// genuine adjoint bug moves entries with elasticity many orders
			// above this (the pivot-reuse bug sat at ~1e-3 · |O|).
			if math.Max(math.Abs(ad), math.Abs(dv))*math.Abs(params[k].Get()) < 1000*eps*noise[o] {
				continue
			}
			e := relErr(ad, dv, math.Max(scales[o], pscales[k]))
			if e > rep.MaxDirectErr {
				rep.MaxDirectErr = e
			}
			if e > opt.DirectTol {
				rep.failf("direct vs adjoint: obj %d param %d: %g vs %g (rel %.3g > %g)",
					o, k, dense.Sens.DOdp[o][k], dir.DOdp[o][k], e, opt.DirectTol)
				return
			}
		}
	}
}

// verifyFD cross-checks a parameter subset against central finite
// differences. Each difference is computed at steps h and h/2 and Richardson
// extrapolated; parameters whose FD stencil is numerically unreliable (the
// two stencils disagree on 10%, or the perturbed trajectories change their
// step schedule) are skipped rather than failed — FD is the noisy oracle
// here, the adjoint is the precise one.
func verifyFD(c *Case, opt Options, rep *CaseReport, dense *masc.Run) {
	sel := rand.New(rand.NewSource(c.Seed ^ 0x5DEECE66D))
	nPar := rep.Params
	picks := sel.Perm(nPar)
	if len(picks) > opt.FDChecks {
		picks = picks[:opt.FDChecks]
	}
	scales := objScales(dense.Sens.DOdp)

	baseSteps := dense.Tran.Steps()
	baseCuts := dense.Tran.Stats.StepsCut

	runAt := func(k int, val float64) (*masc.TransientResult, []masc.Objective, error) {
		bt, err := c.Build()
		if err != nil {
			return nil, nil, err
		}
		bt.Ckt.Params()[k].Set(val)
		topt := bt.SimBase.Transient
		topt.TStep = bt.SimBase.TStep
		topt.TStop = bt.SimBase.TStop
		tr, err := masc.RunTransient(bt.Ckt, topt)
		return tr, bt.Objectives, err
	}

	for _, k := range picks {
		bt, err := c.Build()
		if err != nil {
			rep.failf("fd rebuild: %v", err)
			return
		}
		p0 := bt.Ckt.Params()[k].Get()
		if p0 == 0 {
			rep.FDSkipped++
			continue
		}
		objs := bt.Objectives

		// Central difference at two stencil widths.
		stencil := func(h float64) ([]float64, bool) {
			trp, _, errP := runAt(k, p0+h)
			trm, _, errM := runAt(k, p0-h)
			if errP != nil || errM != nil {
				return nil, false
			}
			// A perturbation that changed the step schedule (Newton cuts)
			// differentiates across a discontinuous grid — unusable.
			if trp.Steps() != baseSteps || trm.Steps() != baseSteps ||
				trp.Stats.StepsCut != baseCuts || trm.Stats.StepsCut != baseCuts {
				return nil, false
			}
			den := (p0 + h) - (p0 - h) // exact spacing after rounding
			out := make([]float64, len(objs))
			for o := range objs {
				out[o] = (objValue(trp, objs[o]) - objValue(trm, objs[o])) / den
			}
			return out, true
		}
		h := 1e-4 * math.Abs(p0)
		fdH, ok1 := stencil(h)
		fdH2, ok2 := stencil(h / 2)
		if !ok1 || !ok2 {
			rep.FDSkipped++
			continue
		}
		rep.FDChecked++
		for o := range objs {
			// Richardson: error drops from O(h²) to O(h⁴).
			fd := (4*fdH2[o] - fdH[o]) / 3
			conv := math.Abs(fdH2[o] - fdH[o])
			ad := dense.Sens.DOdp[o][k]
			// Detectability gate: a central difference only resolves a
			// parameter whose induced objective change clears the
			// trajectory's floating-point granularity by a wide margin;
			// below that the "oracle" reads rounding noise, not physics.
			// Gating on max(|ad|,|fd|) means a buggy zero adjoint cannot
			// exempt itself: the large measured fd keeps the check alive.
			const eps = 2.220446049250313e-16
			signal := math.Max(math.Abs(ad), math.Abs(fd)) * 2 * h
			floor := 500 * eps * objNoiseScale(dense.Tran, objs[o]) / opt.FDTol
			if signal < floor {
				continue
			}
			if conv > 0.1*math.Max(math.Abs(fd), scales[o]) {
				// The stencil itself has not converged — noise-dominated.
				continue
			}
			e := relErr(ad, fd, scales[o])
			if e > rep.MaxFDErr {
				rep.MaxFDErr = e
			}
			// Accept either the relative tolerance or agreement within a
			// small multiple of the stencil's own demonstrated convergence
			// error — the Richardson estimate is itself only accurate to
			// O(conv), so demanding |ad−fd| < conv would fail exact adjoints.
			if e > opt.FDTol && math.Abs(ad-fd) > 3*conv {
				rep.failf("fd vs adjoint: obj %d param %d (%s): %g vs %g (rel %.3g > %g, conv %.3g)",
					o, k, bt.Ckt.Params()[k].Name, ad, fd, e, opt.FDTol, conv)
				return
			}
		}
	}
}

// FleetReport aggregates a whole verification fleet.
type FleetReport struct {
	Reports      []*CaseReport
	Failed       int
	FDChecked    int
	FDSkipped    int
	MaxFDErr     float64
	MaxDirectErr float64
}

// OK reports whether the whole fleet passed.
func (f *FleetReport) OK() bool { return f.Failed == 0 }

// Fleet verifies every case, aggregating the outcome. Infrastructure
// errors (oracle build/convergence failures) are recorded as case failures.
func Fleet(cases []*Case, opt Options) *FleetReport {
	opt = opt.withDefaults()
	fr := &FleetReport{}
	for _, c := range cases {
		rep, err := VerifyCase(c, opt)
		if err != nil {
			rep.failf("infrastructure: %v", err)
		}
		fr.Reports = append(fr.Reports, rep)
		if !rep.OK() {
			fr.Failed++
		}
		fr.FDChecked += rep.FDChecked
		fr.FDSkipped += rep.FDSkipped
		if rep.MaxFDErr > fr.MaxFDErr {
			fr.MaxFDErr = rep.MaxFDErr
		}
		if rep.MaxDirectErr > fr.MaxDirectErr {
			fr.MaxDirectErr = rep.MaxDirectErr
		}
		if opt.Logf != nil {
			status := "ok"
			if !rep.OK() {
				status = "FAIL: " + rep.Failures[0]
			}
			opt.Logf("%-22s N=%-3d steps=%-3d params=%-3d fd=%d/%d dirErr=%.2e fdErr=%.2e %s",
				c.Name(), rep.Unknowns, rep.Steps, rep.Params,
				rep.FDChecked, rep.FDChecked+rep.FDSkipped,
				rep.MaxDirectErr, rep.MaxFDErr, status)
		}
	}
	return fr
}
