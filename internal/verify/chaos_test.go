package verify

import (
	"errors"
	"fmt"
	"testing"

	"masc/internal/faultinject"
	"masc/internal/jactensor"
)

// TestChaosFleetSmall runs the full scenario matrix over a handful of
// seeds. The assertions are the chaos gate itself: no silent corruption,
// no opaque errors, and the injector must actually have fired somewhere
// (a fleet of all-clean outcomes proves nothing).
func TestChaosFleetSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos fleet is seconds-long; skipped in -short")
	}
	cr := ChaosFleet(4, 1234, Options{})
	if !cr.OK() {
		for _, r := range cr.Reports {
			if r.Bad() {
				t.Errorf("%s/%s: %s: %s", r.Case.Name(), r.Scenario, r.Outcome, r.Detail)
			}
		}
		t.Fatalf("chaos fleet failed: %d contract violations", cr.Failed)
	}
	exercised := cr.Counts[OutcomeDegraded] + cr.Counts[OutcomeAbsorbed] + cr.Counts[OutcomeFailedLoud]
	if exercised == 0 {
		t.Fatalf("no scenario delivered a fault: %v", cr.Counts)
	}
	if cr.Counts[OutcomeDegraded] == 0 {
		t.Fatalf("no run exercised the degradation path: %v", cr.Counts)
	}
	if cr.Counts[OutcomeFailedLoud] == 0 {
		t.Fatalf("no run exercised the fail-loudly path: %v", cr.Counts)
	}
}

// TestFailedStepUnwrapsChains pins the diagnosability helper on the typed
// error chains the storage layers actually produce.
func TestFailedStepUnwrapsChains(t *testing.T) {
	inner := &jactensor.StepError{Step: 7, Op: "fetch", Tensor: "J", Corrupt: true,
		Degradable: true, Err: errors.New("checksum")}
	wrapped := fmt.Errorf("adjoint: fetch step 7: %w", fmt.Errorf("x: %w", inner))
	if step, ok := failedStep(wrapped); !ok || step != 7 {
		t.Fatalf("failedStep(%v) = %d, %v", wrapped, step, ok)
	}
	if !diagnosable(wrapped) {
		t.Fatal("wrapped StepError must be diagnosable")
	}
	if _, ok := failedStep(errors.New("mystery")); ok {
		t.Fatal("plain error must not claim a step")
	}
	if diagnosable(errors.New("mystery")) {
		t.Fatal("plain error is not diagnosable")
	}
	if !diagnosable(fmt.Errorf("io: %w", faultinject.ErrInjected)) {
		t.Fatal("injected-fault errors are diagnosable")
	}
}
