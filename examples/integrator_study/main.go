// Integrator study: the same sensitivity analysis under backward Euler,
// the trapezoidal rule, and LTE-adaptive stepping. Each scheme produces a
// *different* discretization — so their sensitivities differ by O(h) or
// O(h²) — but within one scheme every Jacobian storage strategy is exact,
// and refining the step shows the schemes converging to each other.
package main

import (
	"fmt"
	"log"

	"masc"
)

func build() (*masc.Circuit, masc.Objective, error) {
	b := masc.NewBuilder()
	b.AddVSource("vin", "in", "0", masc.Sin{VA: 3, Freq: 5e3})
	b.AddDiode("d1", "in", "peak")
	b.AddCapacitor("cp", "peak", "0", 2e-8)
	b.AddResistor("rp", "peak", "0", 50e3)
	b.AddResistor("rf", "peak", "out", 10e3)
	b.AddCapacitor("cf", "out", "0", 1e-8)
	ckt, err := b.Build()
	if err != nil {
		return nil, masc.Objective{}, err
	}
	out, err := b.NodeIndex("out")
	return ckt, masc.Objective{Name: "v(out)", Node: out, Weight: 1}, err
}

func main() {
	type variant struct {
		label    string
		method   masc.Method
		adaptive bool
		step     float64
	}
	variants := []variant{
		{"backward-euler h=2µs", masc.MethodBE, false, 2e-6},
		{"backward-euler h=0.5µs", masc.MethodBE, false, 5e-7},
		{"trapezoidal   h=2µs", masc.MethodTrap, false, 2e-6},
		{"adaptive BE   h₀=2µs", masc.MethodBE, true, 2e-6},
	}
	fmt.Printf("%-24s %8s %14s %14s %10s\n", "integrator", "steps", "v(out) final", "dO/d(cp.c)", "tensor CR")
	for _, v := range variants {
		ckt, obj, err := build()
		if err != nil {
			log.Fatal(err)
		}
		opt := masc.SimOptions{
			TStep:   v.step,
			TStop:   6e-4,
			Storage: masc.StorageMASC,
		}
		opt.Transient.Method = v.method
		opt.Transient.Adaptive = v.adaptive
		run, err := masc.Simulate(ckt, opt, []masc.Objective{obj}, nil)
		if err != nil {
			log.Fatal(err)
		}
		// dO/d(cp.c) is parameter index of cp: find it by name.
		var dcp float64
		for k, p := range ckt.Params() {
			if p.Name == "cp.c" {
				dcp = run.Sens.DOdp[0][k]
			}
		}
		final := run.Tran.States[len(run.Tran.States)-1][obj.Node]
		cr := float64(run.TensorStats.RawBytes) / float64(run.TensorStats.StoredBytes)
		fmt.Printf("%-24s %8d %14.9f %14.6e %9.1fx\n", v.label, run.Tran.Steps(), final, dcp, cr)
	}
	fmt.Println("\nfine-step BE and trapezoidal agree to O(h²); adaptive BE spends")
	fmt.Println("steps only where the rectifier switches — all with compressed tensors.")
}
