// Rectifier sensitivity: a nonlinear peak detector analysed with both the
// adjoint and the direct method. The adjoint needs one solve per objective
// per step; the direct method needs one per *parameter* per step — on a
// circuit with many parameters and one objective the adjoint wins, which is
// the reason the MASC paper accelerates it.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"masc"
)

func main() {
	b := masc.NewBuilder()
	b.AddVSource("vin", "in", "0", masc.Sin{VA: 5, Freq: 2e3})
	// A diode ladder: each stage rectifies into its own reservoir.
	prev := "in"
	for i := 0; i < 8; i++ {
		n := fmt.Sprintf("s%d", i)
		b.AddDiode(fmt.Sprintf("d%d", i), prev, n)
		b.AddCapacitor(fmt.Sprintf("c%d", i), n, "0", 4.7e-8)
		b.AddResistor(fmt.Sprintf("r%d", i), n, "0", 20e3)
		prev = n
	}
	ckt, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	last, err := b.NodeIndex("s7")
	if err != nil {
		log.Fatal(err)
	}
	obj := masc.Objective{Name: "v(s7)", Node: last, Weight: 1}
	opt := masc.SimOptions{TStep: 2e-6, TStop: 2e-3, Storage: masc.StorageMASC}

	start := time.Now()
	run, err := masc.Simulate(ckt, opt, []masc.Objective{obj}, nil)
	if err != nil {
		log.Fatal(err)
	}
	adjTime := time.Since(start)

	start = time.Now()
	dir, err := masc.DirectSensitivities(ckt, run.Tran, []masc.Objective{obj}, nil)
	if err != nil {
		log.Fatal(err)
	}
	dirTime := time.Since(start)

	params := ckt.Params()
	fmt.Printf("%d parameters, 1 objective, %d steps\n", len(params), run.Tran.Steps())
	fmt.Printf("adjoint (incl. forward): %v; direct (reverse only): %v\n", adjTime, dirTime)

	worst := 0.0
	for k := range params {
		d := math.Abs(run.Sens.DOdp[0][k] - dir.DOdp[0][k])
		s := math.Max(1, math.Abs(dir.DOdp[0][k]))
		if d/s > worst {
			worst = d / s
		}
	}
	fmt.Printf("max adjoint-vs-direct relative deviation: %.2e\n", worst)

	type pv struct {
		name string
		v    float64
	}
	list := make([]pv, len(params))
	for k := range params {
		list[k] = pv{params[k].Name, run.Sens.DOdp[0][k]}
	}
	sort.Slice(list, func(i, j int) bool { return math.Abs(list[i].v) > math.Abs(list[j].v) })
	fmt.Println("most influential parameters on the last reservoir voltage:")
	for _, e := range list[:6] {
		fmt.Printf("  %-8s %+.4e\n", e.name, e.v)
	}
}
