* RC low-pass with a diode clamp — small but nonlinear, so the forward
* solve exercises Newton iterations and the Jacobian tensor moves between
* timesteps (giving the MASC predictors something to do).
.model dclamp D IS=1e-14 N=1.5
VIN in 0 SIN(0 3 2k)
R1 in mid 1k
C1 mid 0 220n
D1 mid clip dclamp
RC clip 0 10k
R2 mid out 4.7k
C2 out 0 100n
.tran 5u 2m
.obj v(out) v(clip)
.print v(in) v(mid) v(out)
.end
