// Netlist deck: drive the whole pipeline from SPICE text — the workflow of
// a user who has a netlist rather than Go code.
package main

import (
	"fmt"
	"log"
	"strings"

	"masc"
)

const deck = `common-emitter amplifier
.model qfast NPN IS=1e-15 BF=120
VCC vcc 0 DC 9
VIN sig 0 SIN(0 10m 50k)
RS sig base 1k
RB1 vcc base 68k
RB2 base 0 12k
RC vcc col 3.3k
RE em 0 680
CE em 0 10u
Q1 col base em qfast
CL col 0 10p
.tran 0.2u 60u
.obj v(col) v(em)
.end
`

func main() {
	d, err := masc.ParseNetlist(strings.NewReader(deck))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Title)

	run, err := masc.Simulate(d.Ckt, masc.SimOptions{
		TStep:   d.Tran.TStep,
		TStop:   d.Tran.TStop,
		Storage: masc.StorageMASCMarkov,
	}, d.Objectives, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("steps: %d  tensor CR: %.1f\n", run.Tran.Steps(),
		float64(run.TensorStats.RawBytes)/float64(run.TensorStats.StoredBytes))
	for o, obj := range d.Objectives {
		fmt.Printf("\nsensitivities of %s:\n", obj.Name)
		for k, p := range d.Ckt.Params() {
			fmt.Printf("  %-14s %+.4e\n", p.Name, run.Sens.DOdp[o][k])
		}
	}
}
