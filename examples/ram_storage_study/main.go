// RAM storage study: the same sensitivity analysis of a MOS memory array
// under every Jacobian storage strategy the MASC paper compares — the
// reader's own miniature Figure 7. The sensitivities must agree bit-for-
// solver-precision across strategies; the memory footprints must not.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"masc"
)

// buildRAM wires a rows×cols 1T1C array with one word line active at a
// time, like the paper's ram2k workload.
func buildRAM(rows, cols int) (*masc.Circuit, masc.Objective, error) {
	b := masc.NewBuilder()
	b.AddVSource("vdd", "vdd", "0", masc.DC(3))
	for r := 0; r < rows; r++ {
		b.AddVSource(fmt.Sprintf("vwl%d", r), fmt.Sprintf("wl%d", r), "0", masc.Pulse{
			V1: 0, V2: 3,
			TD: float64(r) * 6e-9, TR: 5e-10, TF: 5e-10,
			PW: 4e-9, PE: float64(rows) * 6e-9,
		})
	}
	for c := 0; c < cols; c++ {
		bl := fmt.Sprintf("bl%d", c)
		b.AddResistor(fmt.Sprintf("rbl%d", c), "vdd", bl, 10e3)
		b.AddCapacitor(fmt.Sprintf("cbl%d", c), bl, "0", 5e-14)
		for r := 0; r < rows; r++ {
			cell := fmt.Sprintf("s%d_%d", r, c)
			b.AddMOSFET(fmt.Sprintf("m%d_%d", r, c), bl, fmt.Sprintf("wl%d", r), cell)
			b.AddCapacitor(fmt.Sprintf("cs%d_%d", r, c), cell, "0", 2e-14)
		}
	}
	ckt, err := b.Build()
	if err != nil {
		return nil, masc.Objective{}, err
	}
	node, err := b.NodeIndex("bl0")
	if err != nil {
		return nil, masc.Objective{}, err
	}
	return ckt, masc.Objective{Name: "v(bl0)", Node: node, Weight: 1}, nil
}

func main() {
	ckt, obj, err := buildRAM(8, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ckt)

	base := masc.SimOptions{
		TStep: 1e-10, TStop: 5e-8,
		Workers:         4,
		DiskBytesPerSec: 0.5e9, // the paper's SSD
	}
	strategies := []masc.Storage{
		masc.StorageRecompute, masc.StorageMemory,
		masc.StorageDisk, masc.StorageMASC, masc.StorageMASCMarkov,
	}
	var ref []float64
	fmt.Printf("%-14s %10s %14s %14s %8s\n", "storage", "time", "stored", "peak-resident", "CR")
	for _, s := range strategies {
		opt := base
		opt.Storage = s
		start := time.Now()
		run, err := masc.Simulate(ckt, opt, []masc.Objective{obj}, nil)
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		if ref == nil {
			ref = run.Sens.DOdp[0]
		} else {
			for k := range ref {
				if d := math.Abs(run.Sens.DOdp[0][k] - ref[k]); d > 1e-9*math.Max(1, math.Abs(ref[k])) {
					log.Fatalf("%s: sensitivity %d diverged", s, k)
				}
			}
		}
		st := run.TensorStats
		cr := "-"
		if st.StoredBytes > 0 {
			cr = fmt.Sprintf("%.1f", float64(st.RawBytes)/float64(st.StoredBytes))
		}
		fmt.Printf("%-14s %10v %14d %14d %8s\n", s, el.Round(time.Millisecond),
			st.StoredBytes, st.PeakResident, cr)
	}
	fmt.Println("all strategies produced identical sensitivities ✓")
}
