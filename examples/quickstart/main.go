// Quickstart: build a small filter programmatically, run the MASC
// sensitivity pipeline, and print what came out.
package main

import (
	"fmt"
	"log"

	"masc"
)

func main() {
	// A two-pole RC lowpass driven by a 5 kHz sine.
	b := masc.NewBuilder()
	b.AddVSource("vin", "in", "0", masc.Sin{VA: 1, Freq: 5e3})
	b.AddResistor("r1", "in", "n1", 1e3)
	b.AddCapacitor("c1", "n1", "0", 1e-8)
	b.AddResistor("r2", "n1", "out", 2e3)
	b.AddCapacitor("c2", "out", "0", 1e-8)
	ckt, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	out, err := b.NodeIndex("out")
	if err != nil {
		log.Fatal(err)
	}

	// Simulate 0.4 ms with the Jacobian tensor held as MASC-compressed
	// blobs, then compute dV(out)/dp for every R and C.
	run, err := masc.Simulate(ckt, masc.SimOptions{
		TStep:   2e-6,
		TStop:   4e-4,
		Storage: masc.StorageMASC,
	}, []masc.Objective{{Name: "v(out)", Node: out, Weight: 1}}, nil)
	if err != nil {
		log.Fatal(err)
	}

	final := run.Tran.States[len(run.Tran.States)-1][out]
	fmt.Printf("simulated %d steps; final v(out) = %.6f V\n", run.Tran.Steps(), final)
	st := run.TensorStats
	fmt.Printf("jacobian tensor: %d B raw → %d B compressed (%.1fx)\n",
		st.RawBytes, st.StoredBytes, float64(st.RawBytes)/float64(st.StoredBytes))
	fmt.Println("sensitivities of v(out) at t = 0.4 ms:")
	for k, p := range ckt.Params() {
		fmt.Printf("  dO/d(%-10s) = %+.4e\n", p.Name, run.Sens.DOdp[0][k])
	}
}
