package masc

import (
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
)

func buildTestCircuit(t testing.TB) (*Circuit, *Builder, Objective) {
	b := NewBuilder()
	b.AddVSource("vin", "in", "0", Sin{VA: 1, Freq: 5e3})
	b.AddResistor("r1", "in", "mid", 1e3)
	b.AddCapacitor("c1", "mid", "0", 1e-8)
	b.AddDiode("d1", "mid", "out")
	b.AddResistor("r2", "out", "0", 5e3)
	b.AddCapacitor("c2", "out", "0", 2e-8)
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.NodeIndex("out")
	if err != nil {
		t.Fatal(err)
	}
	return ckt, b, Objective{Name: "v(out)", Node: out, Weight: 1}
}

func TestSimulateAllStorages(t *testing.T) {
	ckt, _, obj := buildTestCircuit(t)
	opt := SimOptions{TStep: 2e-6, TStop: 4e-4}
	var ref *Run
	for _, st := range []Storage{StorageRecompute, StorageMemory, StorageDisk, StorageMASC, StorageMASCMarkov} {
		opt.Storage = st
		run, err := Simulate(ckt, opt, []Objective{obj}, nil)
		if err != nil {
			t.Fatalf("%s: %v", st, err)
		}
		if run.Sens == nil || len(run.Sens.DOdp) != 1 {
			t.Fatalf("%s: missing sensitivities", st)
		}
		if ref == nil {
			ref = run
			continue
		}
		for k := range run.Sens.DOdp[0] {
			a, b := run.Sens.DOdp[0][k], ref.Sens.DOdp[0][k]
			if d := math.Abs(a - b); d > 1e-9*math.Max(1, math.Abs(b)) {
				t.Fatalf("%s: sensitivity %d diverges: %g vs %g", st, k, a, b)
			}
		}
		if st == StorageMASC || st == StorageMASCMarkov {
			if run.TensorStats.StoredBytes >= run.TensorStats.RawBytes {
				t.Fatalf("%s: no compression: %+v", st, run.TensorStats)
			}
		}
	}
}

func TestSimulateAsyncMatchesSync(t *testing.T) {
	ckt, _, obj := buildTestCircuit(t)
	for _, st := range []Storage{StorageMASC, StorageMASCMarkov} {
		sync, err := Simulate(ckt, SimOptions{
			TStep: 2e-6, TStop: 4e-4, Storage: st,
		}, []Objective{obj}, nil)
		if err != nil {
			t.Fatalf("%s sync: %v", st, err)
		}
		async, err := Simulate(ckt, SimOptions{
			TStep: 2e-6, TStop: 4e-4, Storage: st, Async: true, PipelineDepth: 3,
		}, []Objective{obj}, nil)
		if err != nil {
			t.Fatalf("%s async: %v", st, err)
		}
		// Pipelining reorders work, never results: same compressed size,
		// bit-identical sensitivities.
		if sync.TensorStats.StoredBytes != async.TensorStats.StoredBytes {
			t.Fatalf("%s: stored bytes diverge: sync %d async %d",
				st, sync.TensorStats.StoredBytes, async.TensorStats.StoredBytes)
		}
		for k := range sync.Sens.DOdp[0] {
			a, b := sync.Sens.DOdp[0][k], async.Sens.DOdp[0][k]
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("%s: sensitivity %d diverges: %g vs %g", st, k, a, b)
			}
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	ckt, _, obj := buildTestCircuit(t)
	if _, err := Simulate(ckt, SimOptions{TStep: 1e-6, TStop: 1e-5}, nil, nil); err == nil {
		t.Fatal("expected error without objectives")
	}
	if _, err := Simulate(ckt, SimOptions{TStep: 1e-6, TStop: 1e-5, Storage: "bogus"}, []Objective{obj}, nil); err == nil {
		t.Fatal("expected error for unknown storage")
	}
	if _, err := Simulate(ckt, SimOptions{}, []Objective{obj}, nil); err == nil {
		t.Fatal("expected error for missing time axis")
	}
}

func TestParseNetlistFacade(t *testing.T) {
	deck, err := ParseNetlist(strings.NewReader("t\nV1 a 0 DC 1\nR1 a b 1k\nC1 b 0 1u\n.tran 1u 100u\n.obj v(b)\n"))
	if err != nil {
		t.Fatal(err)
	}
	run, err := Simulate(deck.Ckt, SimOptions{
		TStep: deck.Tran.TStep, TStop: deck.Tran.TStop, Storage: StorageMASC,
	}, deck.Objectives, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.Tran.Steps() < 50 {
		t.Fatalf("only %d steps", run.Tran.Steps())
	}
}

func TestDirectMatchesAdjointFacade(t *testing.T) {
	ckt, _, obj := buildTestCircuit(t)
	run, err := Simulate(ckt, SimOptions{TStep: 2e-6, TStop: 2e-4, Storage: StorageMemory}, []Objective{obj}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := DirectSensitivities(ckt, run.Tran, []Objective{obj}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := range dir.DOdp[0] {
		a, b := run.Sens.DOdp[0][k], dir.DOdp[0][k]
		if d := math.Abs(a - b); d > 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b))) {
			t.Fatalf("param %d: adjoint %g vs direct %g", k, a, b)
		}
	}
}

// TestSimulateAdjointWorkersBitIdentical pins the facade contract of
// SimOptions.AdjointWorkers: the parallel reverse sweep (sharded dF/dp,
// multi-RHS solves, fetch/solve overlap) must reproduce the serial sweep's
// sensitivities bit for bit, on both raw and compressed storage.
func TestSimulateAdjointWorkersBitIdentical(t *testing.T) {
	ckt, b, obj := buildTestCircuit(t)
	mid, err := b.NodeIndex("mid")
	if err != nil {
		t.Fatal(err)
	}
	objs := []Objective{obj, {Name: "int_v(mid)", Node: mid, Weight: 1, Integral: true}}
	for _, st := range []Storage{StorageMemory, StorageMASC} {
		serial, err := Simulate(ckt, SimOptions{
			TStep: 2e-6, TStop: 4e-4, Storage: st,
		}, objs, nil)
		if err != nil {
			t.Fatalf("%s serial: %v", st, err)
		}
		for _, w := range []int{2, 5} {
			par, err := Simulate(ckt, SimOptions{
				TStep: 2e-6, TStop: 4e-4, Storage: st, AdjointWorkers: w,
			}, objs, nil)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", st, w, err)
			}
			for o := range serial.Sens.DOdp {
				for k := range serial.Sens.DOdp[o] {
					a, bv := serial.Sens.DOdp[o][k], par.Sens.DOdp[o][k]
					if math.Float64bits(a) != math.Float64bits(bv) {
						t.Fatalf("%s workers=%d: obj %d sens %d diverges: %g vs %g", st, w, o, k, bv, a)
					}
				}
			}
		}
	}
}

// TestSimulateAdjointWindowsBitIdentical pins the facade contract of
// SimOptions.AdjointWindows: parallel-in-time window sweeps (including the
// auto width -1, and composed with AdjointWorkers) must reproduce the
// single-sweep sensitivities bit for bit on raw and compressed storage —
// the compressed path going through forward-pass anchor frames and
// window-sliced concurrent decoding.
func TestSimulateAdjointWindowsBitIdentical(t *testing.T) {
	ckt, b, obj := buildTestCircuit(t)
	mid, err := b.NodeIndex("mid")
	if err != nil {
		t.Fatal(err)
	}
	objs := []Objective{obj, {Name: "int_v(mid)", Node: mid, Weight: 1, Integral: true}}
	for _, st := range []Storage{StorageMemory, StorageMASC} {
		serial, err := Simulate(ckt, SimOptions{
			TStep: 2e-6, TStop: 4e-4, Storage: st,
		}, objs, nil)
		if err != nil {
			t.Fatalf("%s serial: %v", st, err)
		}
		for _, W := range []int{-1, 2, 4} {
			for _, workers := range []int{0, 2} {
				par, err := Simulate(ckt, SimOptions{
					TStep: 2e-6, TStop: 4e-4, Storage: st,
					AdjointWindows: W, AdjointWorkers: workers,
				}, objs, nil)
				if err != nil {
					t.Fatalf("%s windows=%d workers=%d: %v", st, W, workers, err)
				}
				if W > 1 && par.Sens.Windows != W {
					t.Fatalf("%s windows=%d: sweep ran %d windows", st, W, par.Sens.Windows)
				}
				for o := range serial.Sens.DOdp {
					for k := range serial.Sens.DOdp[o] {
						a, bv := serial.Sens.DOdp[o][k], par.Sens.DOdp[o][k]
						if math.Float64bits(a) != math.Float64bits(bv) {
							t.Fatalf("%s windows=%d workers=%d: obj %d sens %d diverges: %g vs %g",
								st, W, workers, o, k, bv, a)
						}
					}
				}
			}
		}
	}
}

// TestSimulateMemBudgetBitIdentical is the facade half of the
// tier-equivalence property suite: for every storage strategy the budget
// promotes × integrator × budget rung (halves of the measured unlimited
// peak down to an absurdly tiny one) × window/worker mix, the tiered run
// must reproduce the unlimited-RAM sensitivities bit for bit while its
// PeakResident stays under the budget plus the documented frame slack.
// MASC_MEM_BUDGET=a,b,c (ParseByteSize values) extends the budget rungs —
// the CI budget-sweep matrix drives it.
func TestSimulateMemBudgetBitIdentical(t *testing.T) {
	ckt, b, obj := buildTestCircuit(t)
	mid, err := b.NodeIndex("mid")
	if err != nil {
		t.Fatal(err)
	}
	objs := []Objective{obj, {Name: "int_v(mid)", Node: mid, Weight: 1, Integral: true}}
	// {2, 0} is a regression shape: the ~100-step trajectory is an exact
	// multiple of the W=2 anchor spacing (est/W = 50), which once made
	// AnchorSteps list the head twice and degenerate the window split.
	sweeps := []struct{ windows, workers int }{
		{1, 0}, {2, 0}, {3, 2}, {runtime.NumCPU(), 0},
	}
	for _, st := range []Storage{StorageMemory, StorageMASC} {
		for _, method := range []Method{MethodBE, MethodTrap} {
			base := SimOptions{TStep: 2e-6, TStop: 2e-4, Storage: st}
			base.Transient.Method = method
			ref, err := Simulate(ckt, base, objs, nil)
			if err != nil {
				t.Fatalf("%s/%v unlimited: %v", st, method, err)
			}
			peak := ref.TensorStats.PeakResident
			frame := ref.TensorStats.RawBytes / int64(ref.TensorStats.Steps)
			budgets := []int64{peak / 2, peak / 4, peak / 8, 4 << 10}
			if env := os.Getenv("MASC_MEM_BUDGET"); env != "" {
				for _, f := range strings.Split(env, ",") {
					n, perr := ParseByteSize(f)
					if perr != nil {
						t.Fatalf("MASC_MEM_BUDGET: %v", perr)
					}
					budgets = append(budgets, n)
				}
			}
			for _, budget := range budgets {
				for _, sw := range sweeps {
					opt := base
					opt.MemBudgetBytes = budget
					opt.DiskDir = t.TempDir()
					opt.AdjointWindows = sw.windows
					opt.AdjointWorkers = sw.workers
					run, err := Simulate(ckt, opt, objs, nil)
					if err != nil {
						t.Fatalf("%s/%v budget=%d W=%d wk=%d: %v", st, method, budget, sw.windows, sw.workers, err)
					}
					for o := range ref.Sens.DOdp {
						for k := range ref.Sens.DOdp[o] {
							a, bv := ref.Sens.DOdp[o][k], run.Sens.DOdp[o][k]
							if math.Float64bits(a) != math.Float64bits(bv) {
								t.Fatalf("%s/%v budget=%d W=%d wk=%d: obj %d sens %d diverges: %g vs %g",
									st, method, budget, sw.windows, sw.workers, o, k, bv, a)
							}
						}
					}
					// The hard half of the contract: the budget held, up to
					// the documented in-flight slack (admitted frame, one
					// blob mid-demotion, spill scratch, the frames the sweep
					// holds fetched).
					if got := run.TensorStats.PeakResident; budget > 0 && got > budget+6*frame {
						t.Fatalf("%s/%v budget=%d W=%d wk=%d: PeakResident %d overran budget (+%d slack)",
							st, method, budget, sw.windows, sw.workers, got, 6*frame)
					}
					if run.TensorStats.BudgetBytes != budget {
						t.Fatalf("%s/%v: stats echo budget %d, want %d", st, method, run.TensorStats.BudgetBytes, budget)
					}
					if len(run.Sens.DegradedSteps) != 0 {
						t.Fatalf("%s/%v budget=%d: planned drops leaked into DegradedSteps: %v",
							st, method, budget, run.Sens.DegradedSteps)
					}
				}
			}
		}
	}
}

// TestParseByteSize pins the -mem-budget spelling contract.
func TestParseByteSize(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"4096", 4096},
		{"64k", 64 << 10},
		{"64K", 64 << 10},
		{"64KB", 64 << 10},
		{"64KiB", 64 << 10},
		{"256M", 256 << 20},
		{"256MiB", 256 << 20},
		{"2g", 2 << 30},
		{"1T", 1 << 40},
		{"1.5M", 3 << 19},
		{" 8M ", 8 << 20},
	} {
		got, err := ParseByteSize(tc.in)
		if err != nil {
			t.Fatalf("ParseByteSize(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("ParseByteSize(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "x", "-1", "12Q", "MB"} {
		if _, err := ParseByteSize(bad); err == nil {
			t.Fatalf("ParseByteSize(%q) accepted", bad)
		}
	}
}
