package masc

// Integration matrix: every workload family × every storage strategy ×
// both integrators must produce identical sensitivities — the end-to-end
// losslessness guarantee of the MASC design.

import (
	"math"
	"testing"

	"masc/internal/workload"
)

func TestIntegrationMatrix(t *testing.T) {
	workloads := []string{"add20", "MOS_T5", "CHIP_01", "RC_02", "ram2k"}
	storages := []Storage{StorageRecompute, StorageMemory, StorageDisk, StorageMASC, StorageMASCMarkov}
	methods := []Method{MethodBE, MethodTrap}
	for _, name := range workloads {
		name := name
		t.Run(name, func(t *testing.T) {
			ds, err := workload.Build(name, 0.04)
			if err != nil {
				t.Fatal(err)
			}
			objs := ds.Objectives
			if len(objs) > 3 {
				objs = objs[:3]
			}
			params := ds.Params
			if len(params) > 8 {
				params = params[:8]
			}
			for _, m := range methods {
				m := m
				var ref [][]float64
				for _, st := range storages {
					opt := SimOptions{
						TStep:   ds.Tran.TStep,
						TStop:   ds.Tran.TStop,
						Storage: st,
						Workers: 2,
					}
					opt.Transient.Method = m
					run, err := Simulate(ds.Ckt, opt, objs, params)
					if err != nil {
						t.Fatalf("%s/%s: %v", m, st, err)
					}
					if ref == nil {
						ref = run.Sens.DOdp
						continue
					}
					for o := range ref {
						for k := range ref[o] {
							a, b := run.Sens.DOdp[o][k], ref[o][k]
							if d := math.Abs(a - b); d > 1e-9*math.Max(1, math.Abs(b)) {
								t.Fatalf("%s/%s: obj %d param %d: %g vs %g", m, st, o, k, a, b)
							}
						}
					}
				}
			}
		})
	}
}

// TestIntegrationSensitivityPhysics sanity-checks a few sensitivities with
// known signs on a voltage divider driven through the full pipeline.
func TestIntegrationSensitivityPhysics(t *testing.T) {
	b := NewBuilder()
	b.AddVSource("v1", "top", "0", DC(10))
	b.AddResistor("r1", "top", "mid", 1e3)
	b.AddResistor("r2", "mid", "0", 3e3)
	b.AddCapacitor("c1", "mid", "0", 1e-9)
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mid, _ := b.NodeIndex("mid")
	run, err := Simulate(ckt, SimOptions{TStep: 1e-7, TStop: 3e-5, Storage: StorageMASC},
		[]Objective{{Name: "v(mid)", Node: mid, Weight: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	params := ckt.Params()
	byName := map[string]float64{}
	for k, p := range params {
		byName[p.Name] = run.Sens.DOdp[0][k]
	}
	// v(mid) = 10·r2/(r1+r2) = 7.5 at steady state (reached in ~30τ):
	// dv/dr1 = -10·r2/(r1+r2)² = -1.875e-3; dv/dr2 = +10·r1/(r1+r2)² = 0.625e-3;
	// dv/dscale = 0.75.
	checks := map[string]float64{
		"r1.r":     -1.875e-3,
		"r2.r":     0.625e-3,
		"v1.scale": 7.5,
	}
	for name, want := range checks {
		got := byName[name]
		if math.Abs(got-want) > 2e-3*math.Max(1, math.Abs(want)) {
			t.Fatalf("%s: sensitivity %g, want ≈%g", name, got, want)
		}
	}
	if math.Abs(byName["c1.c"]) > 1e-3 {
		t.Fatalf("capacitor sensitivity should vanish at steady state, got %g", byName["c1.c"])
	}
}
