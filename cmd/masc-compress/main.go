// Command masc-compress is a standalone Jacobian-tensor compression
// workbench. It can simulate a named dataset or load a tensor file, then
// report every codec's ratio and throughput — a one-dataset slice of
// Table 3 — and optionally dump the tensor for later runs or external
// tools.
//
//	masc-compress -dataset mem_plus -scale 0.5 -workers 8
//	masc-compress -dataset add20 -dump add20.tensor
//	masc-compress -file add20.tensor -codecs masc,gzip,rans
//	masc-compress -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"masc/internal/bench"
	"masc/internal/obs"
	"masc/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "add20", "dataset name (see -list)")
		file    = flag.String("file", "", "load a tensor file instead of simulating")
		dump    = flag.String("dump", "", "write the captured tensor to this file")
		codecs  = flag.String("codecs", "", "comma-separated codec subset (default: all)")
		scale   = flag.Float64("scale", 0.5, "workload scale")
		workers = flag.Int("workers", 1, "parallel compressor workers")
		list    = flag.Bool("list", false, "list datasets and codecs")

		statsJSON = flag.String("stats-json", "", "write the measured codec cells as one JSON document")
	)
	flag.Parse()
	if *list {
		fmt.Println("datasets:", strings.Join(append(workload.Table2Names(), workload.Table1Names()...), " "))
		fmt.Println("codecs:  ", strings.Join(append(bench.CodecNames(), "rans", "huffman", "chimp-temporal"), " "))
		return
	}
	if err := run(*dataset, *file, *dump, *codecs, *scale, *workers, *statsJSON); err != nil {
		fmt.Fprintln(os.Stderr, "masc-compress:", err)
		os.Exit(1)
	}
}

func run(dataset, file, dump, codecs string, scale float64, workers int, statsJSON string) error {
	var tn *bench.Tensor
	if file != "" {
		t, err := bench.LoadTensor(file)
		if err != nil {
			return err
		}
		tn = t
		fmt.Printf("loaded %s: %d steps, J nnz %d, C nnz %d, %d B raw\n",
			file, tn.Steps, tn.JPat.NNZ(), tn.CPat.NNZ(), tn.RawBytes())
	} else {
		ds, err := workload.Build(dataset, scale)
		if err != nil {
			return err
		}
		t, err := bench.CaptureTensor(ds)
		if err != nil {
			return err
		}
		tn = t
		fmt.Printf("simulated %s: %d steps, %d B raw\n", dataset, tn.Steps, tn.RawBytes())
	}
	if dump != "" {
		if err := tn.SaveFile(dump); err != nil {
			return err
		}
		fmt.Printf("tensor written to %s\n", dump)
	}
	var codecList []string
	if codecs != "" {
		codecList = strings.Split(codecs, ",")
	}
	cells, err := bench.MeasureAllCodecs(tn, codecList, workers)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable3(cells))
	if statsJSON != "" {
		man := obs.NewManifest("masc-compress")
		man.Set("dataset", dataset).
			Set("file", file).
			Set("scale", scale).
			Set("workers", workers)
		man.Section("codecs", cells)
		if err := man.Write(statsJSON); err != nil {
			return err
		}
		fmt.Printf("stats written to %s\n", statsJSON)
	}
	return nil
}
