// Command masc-bench regenerates the tables and figures of the MASC paper
// on the laptop-scale workload analogues.
//
//	masc-bench -experiment table3 -scale 1 -workers 8
//	masc-bench -experiment all -scale 0.25
//
// Experiments: table1, fig1, table2, table3, fig5b, fig6, fig7, parallel,
// pipeline, memory, ablation, all. Scale 1 is the benchmark size (minutes);
// use smaller scales for a quick look.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"masc/internal/bench"
)

func main() {
	var (
		exp     = flag.String("experiment", "all", "table1|fig1|table2|table3|fig5b|fig6|fig7|parallel|pipeline|memory|ablation|all")
		scale   = flag.Float64("scale", 1.0, "workload scale (1 = benchmark size)")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel compressor workers")
		depth   = flag.Int("pipeline-depth", 2, "async pipeline depth for the pipeline experiment")
		diskBps = flag.Float64("disk-bps", bench.DefaultDiskBps, "simulated disk bandwidth (bytes/s)")
	)
	flag.Parse()
	if err := run(strings.ToLower(*exp), *scale, *workers, *depth, *diskBps); err != nil {
		fmt.Fprintln(os.Stderr, "masc-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, scale float64, workers, depth int, diskBps float64) error {
	all := exp == "all"
	did := false
	section := func(title string) {
		fmt.Printf("\n==== %s ====\n", title)
		did = true
	}
	if all || exp == "table1" {
		section("Table 1 — transient vs adjoint sensitivity time")
		rows, err := bench.RunTable1(nil, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable1(rows))
	}
	if all || exp == "fig1" {
		section("Figure 1 — memory cost of storing Jacobians")
		rows, err := bench.RunFig1(nil, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig1(rows))
	}
	if all || exp == "table2" {
		section("Table 2 — datasets and the gzip reference")
		rows, err := bench.RunTable2(nil, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable2(rows))
	}
	if all || exp == "table3" {
		section("Table 3 — compression ratio and time by codec")
		cells, err := bench.RunTable3(nil, nil, scale, workers)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable3(cells))
	}
	if all || exp == "fig5b" || exp == "fig6" {
		section("Figures 5b & 6 — residual and model-selection statistics")
		f5, f6, err := bench.RunFig5b6(nil, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig5b(f5))
		fmt.Println()
		fmt.Print(bench.FormatFig6(f6))
	}
	if all || exp == "fig7" {
		section("Figure 7 — end-to-end sensitivity simulation time")
		rows, err := bench.RunFig7(nil, scale, workers, diskBps)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig7(rows))
	}
	if all || exp == "parallel" {
		section("§6.4 — parallel compressor scaling")
		rows, err := bench.RunParallel("", scale, nil)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatParallel(rows))
	}
	if all || exp == "pipeline" {
		section("Pipelined store — async compression overlap")
		rows, err := bench.RunPipeline(nil, scale, workers, depth)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatPipeline(rows))
	}
	if all || exp == "memory" {
		section("Memory footprint by storage strategy (measured)")
		rows, err := bench.RunMemory(nil, scale, workers)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatMemory(rows))
	}
	if all || exp == "ablation" {
		section("Ablation — MASC design choices")
		rows, err := bench.RunAblation(nil, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatAblation(rows))
	}
	if !did {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
