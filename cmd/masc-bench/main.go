// Command masc-bench regenerates the tables and figures of the MASC paper
// on the laptop-scale workload analogues.
//
//	masc-bench -experiment table3 -scale 1 -workers 8
//	masc-bench -experiment all -scale 0.25
//
// Experiments: table1, fig1, table2, table3, fig5b, fig6, fig7, parallel,
// pipeline, adjoint, windows, budget, memory, ablation, all. Scale 1 is
// the benchmark size (minutes); use smaller scales for a quick look.
//
// Perf-regression gate: -baseline diffs this run's rows against an earlier
// -stats-json snapshot with noise-aware per-metric thresholds, and exits
// with status 3 when any metric regressed past its allowance:
//
//	masc-bench -experiment adjoint -scale 0.1 -baseline BENCH_adjoint_scale0.1.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"masc/internal/bench"
	"masc/internal/obs"
)

func main() {
	var (
		exp        = flag.String("experiment", "all", "table1|fig1|table2|table3|codec|auto|fig5b|fig6|fig7|parallel|pipeline|adjoint|windows|budget|memory|ablation|journal|all")
		scale      = flag.Float64("scale", 1.0, "workload scale (1 = benchmark size)")
		workers    = flag.Int("workers", runtime.NumCPU(), "parallel compressor workers")
		adjWorkers = flag.Int("adjoint-workers", 0, "adjoint experiment: extra reverse-sweep worker count to measure (0 = just the built-in 1/2/4 sweep)")
		adjWindows = flag.Int("adjoint-windows", 0, "windows experiment: extra window count to measure (0 = just the built-in 2/4/NumCPU sweep)")
		depth      = flag.Int("pipeline-depth", 2, "async pipeline depth for the pipeline experiment")
		diskBps    = flag.Float64("disk-bps", bench.DefaultDiskBps, "simulated disk bandwidth (bytes/s)")
		statsJSON  = flag.String("stats-json", "", "write every experiment's raw rows as one JSON document")
		baseline   = flag.String("baseline", "", "regression gate: compare this run against an earlier -stats-json snapshot; exit 3 on regression")
		timePct    = flag.Float64("time-threshold", 25, "baseline gate: allowed slowdown of time metrics, percent")
		minTime    = flag.Float64("min-time", 0.02, "baseline gate: noise floor in seconds — limits grow from max(baseline, floor)")
		bytesPct   = flag.Float64("bytes-threshold", 10, "baseline gate: allowed growth of byte/size metrics, percent")
		ratioPct   = flag.Float64("ratio-threshold", 20, "baseline gate: allowed loss of speedup/compression-ratio metrics, percent")
	)
	flag.Parse()
	gate := gateConfig{
		baseline: *baseline,
		opt: bench.RegressOptions{
			TimeFrac:   *timePct / 100,
			MinTimeSec: *minTime,
			BytesFrac:  *bytesPct / 100,
			RatioFrac:  *ratioPct / 100,
		},
	}
	if err := run(strings.ToLower(*exp), *scale, *workers, *adjWorkers, *adjWindows, *depth, *diskBps, *statsJSON, gate); err != nil {
		var rerr regressionError
		if errors.As(err, &rerr) {
			fmt.Fprintln(os.Stderr, "masc-bench:", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "masc-bench:", err)
		os.Exit(1)
	}
}

// gateConfig carries the -baseline regression-gate settings into run.
type gateConfig struct {
	baseline string
	opt      bench.RegressOptions
}

// regressionError marks a failed -baseline gate so main can exit 3 (a
// perf regression) instead of 1 (a broken run).
type regressionError struct{ n int }

func (e regressionError) Error() string {
	return fmt.Sprintf("%d metric(s) regressed past the baseline thresholds", e.n)
}

func run(exp string, scale float64, workers, adjWorkers, adjWindows, depth int, diskBps float64, statsJSON string, gate gateConfig) error {
	all := exp == "all"
	did := false
	// The manifest mirrors every experiment's raw rows, so a -stats-json
	// snapshot is machine-diffable against a later run.
	man := obs.NewManifest("masc-bench")
	man.Set("experiment", exp).
		Set("scale", scale).
		Set("host_cpus", runtime.NumCPU()).
		Set("workers", workers).
		Set("pipeline_depth", depth).
		Set("disk_bps", diskBps)
	section := func(title string) {
		fmt.Printf("\n==== %s ====\n", title)
		did = true
	}
	if all || exp == "table1" {
		section("Table 1 — transient vs adjoint sensitivity time")
		rows, err := bench.RunTable1(nil, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable1(rows))
		man.Section("table1", rows)
	}
	if all || exp == "fig1" {
		section("Figure 1 — memory cost of storing Jacobians")
		rows, err := bench.RunFig1(nil, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig1(rows))
		man.Section("fig1", rows)
	}
	if all || exp == "table2" {
		section("Table 2 — datasets and the gzip reference")
		rows, err := bench.RunTable2(nil, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable2(rows))
		man.Section("table2", rows)
	}
	if all || exp == "table3" {
		section("Table 3 — compression ratio and time by codec")
		cells, err := bench.RunTable3(nil, nil, scale, workers)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable3(cells))
		man.Section("table3", cells)
	}
	if all || exp == "codec" {
		section("Codec throughput — the masczip hot path's smoke benchmark")
		// The word-parallel hot path's CI gate: a small dataset pair, the
		// codecs whose throughput the fused encoder/decoder moves, with
		// the derived MB/s columns the -baseline gate treats as
		// higher-is-better rates.
		cells, err := bench.RunTable3([]string{"add20", "mem_plus"},
			[]string{"masc", "masc+markov", "gzip"}, scale, workers)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable3(cells))
		man.Section("codec", cells)
	}
	if all || exp == "auto" {
		section("Adaptive codec selection — trial pick vs ex-post best")
		rows, err := bench.RunAutoSelect(nil, scale, workers)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatAutoSelect(rows))
		man.Section("autoselect", rows)
		for _, r := range rows {
			if !r.WithinTol {
				fmt.Printf("WARNING: %s picked %s at %.0f%% of the ex-post best (%s)\n",
					r.Dataset, r.Picked, 100*r.SelEfficiencyRatio, r.ExPostBest)
			}
		}
	}
	if all || exp == "fig5b" || exp == "fig6" {
		section("Figures 5b & 6 — residual and model-selection statistics")
		f5, f6, err := bench.RunFig5b6(nil, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig5b(f5))
		fmt.Println()
		fmt.Print(bench.FormatFig6(f6))
		man.Section("fig5b", f5)
		man.Section("fig6", f6)
	}
	if all || exp == "fig7" {
		section("Figure 7 — end-to-end sensitivity simulation time")
		rows, err := bench.RunFig7(nil, scale, workers, diskBps)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig7(rows))
		man.Section("fig7", rows)
	}
	if all || exp == "parallel" {
		section("§6.4 — parallel compressor scaling")
		rows, err := bench.RunParallel("", scale, nil)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatParallel(rows))
		man.Section("parallel", rows)
	}
	if all || exp == "pipeline" {
		section("Pipelined store — async compression overlap")
		rows, err := bench.RunPipeline(nil, scale, workers, depth)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatPipeline(rows))
		man.Section("pipeline", rows)
	}
	if all || exp == "adjoint" {
		section("Parallel adjoint engine — multi-RHS, sharded dF/dp, fetch overlap")
		ws := []int{1, 2, 4}
		if adjWorkers > 0 {
			ws = append(ws, adjWorkers)
		}
		rows, err := bench.RunAdjoint(nil, scale, ws)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatAdjoint(rows))
		man.Section("adjoint", rows)
	}
	if all || exp == "windows" {
		section("Parallel-in-time windowed adjoint — concurrent sweeps over window slices")
		ws := []int{2, 4, runtime.NumCPU()}
		if adjWindows > 1 {
			ws = append(ws, adjWindows)
		}
		rows, err := bench.RunWindows(nil, scale, ws)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatWindows(rows))
		man.Section("windows", rows)
	}
	if all || exp == "budget" {
		section("Tiered store — memory-budget ladder (hot/compressed/disk/recompute)")
		rows, err := bench.RunBudget(nil, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatBudget(rows))
		man.Section("budget", rows)
	}
	if all || exp == "memory" {
		section("Memory footprint by storage strategy (measured)")
		rows, err := bench.RunMemory(nil, scale, workers)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatMemory(rows))
		man.Section("memory", rows)
	}
	if all || exp == "journal" {
		section("Write-ahead run journal — forward-phase overhead by fsync cadence")
		rows, err := bench.RunJournal(nil, scale, nil, 10)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatJournal(rows))
		man.Section("journal", rows)
	}
	if all || exp == "ablation" {
		section("Ablation — MASC design choices")
		rows, err := bench.RunAblation(nil, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatAblation(rows))
		man.Section("ablation", rows)
	}
	if !did {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	if statsJSON != "" {
		if err := man.Write(statsJSON); err != nil {
			return err
		}
		fmt.Printf("\nstats written to %s\n", statsJSON)
	}
	if gate.baseline != "" {
		base, err := os.ReadFile(gate.baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		cur, err := json.Marshal(man)
		if err != nil {
			return err
		}
		rep, err := bench.CompareManifests(base, cur, gate.opt)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s", bench.FormatRegressReport(rep))
		if !rep.OK() {
			return regressionError{n: len(rep.Regressions)}
		}
	}
	return nil
}
