// Command masc-verify runs the differential verification fleet: seeded
// randomized circuits are pushed through the full transient+adjoint
// pipeline under every Jacobian storage strategy, asserting that the
// compressed stores (sync and async) reproduce the dense in-RAM oracle
// bit for bit, and that the adjoint sensitivities agree with the direct
// method and with finite differences.
//
//	masc-verify -n 50 -seed 1
//
// The exit status is 0 only if every case passes every check, so the
// command slots directly into CI and pre-merge gauntlets.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"masc/internal/verify"
)

func main() {
	var (
		n       = flag.Int("n", 50, "number of randomized circuits")
		seed    = flag.Int64("seed", 1, "master seed for the case generator")
		fd      = flag.Int("fd", 4, "finite-difference checks per case (0 disables the FD layer)")
		fdTol   = flag.Float64("fd-tol", 1e-6, "finite-difference relative tolerance")
		dirTol  = flag.Float64("direct-tol", 1e-4, "adjoint-vs-direct relative tolerance")
		workers = flag.Int("workers", 1, "masczip compression workers")
		depth   = flag.Int("pipeline-depth", 2, "async store queue depth")
		verbose = flag.Bool("v", false, "log every case")
	)
	flag.Parse()

	opt := verify.Options{
		Workers:       *workers,
		PipelineDepth: *depth,
		FDChecks:      *fd,
		FDTol:         *fdTol,
		DirectTol:     *dirTol,
	}
	if *verbose {
		opt.Logf = func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		}
	}

	start := time.Now()
	cases := verify.Cases(*n, *seed)
	fr := verify.Fleet(cases, opt)

	fmt.Printf("masc-verify: %d cases, seed %d: %d passed, %d failed (%.1fs)\n",
		len(cases), *seed, len(cases)-fr.Failed, fr.Failed, time.Since(start).Seconds())
	fmt.Printf("  layers: dense oracle vs recompute/sync/async (bitwise), store fetch sweep (bitwise),\n")
	fmt.Printf("          direct method (max rel err %.3g), finite differences (%d checked, %d skipped, max rel err %.3g)\n",
		fr.MaxDirectErr, fr.FDChecked, fr.FDSkipped, fr.MaxFDErr)
	if !fr.OK() {
		for _, rep := range fr.Reports {
			for _, f := range rep.Failures {
				fmt.Printf("  FAIL %s: %s\n", rep.Case.Name(), f)
			}
		}
		os.Exit(1)
	}
}
