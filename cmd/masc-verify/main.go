// Command masc-verify runs the differential verification fleet: seeded
// randomized circuits are pushed through the full transient+adjoint
// pipeline under every Jacobian storage strategy, asserting that the
// compressed stores (sync and async) reproduce the dense in-RAM oracle
// bit for bit, and that the adjoint sensitivities agree with the direct
// method and with finite differences.
//
//	masc-verify -n 50 -seed 1
//
// Chaos mode replaces the differential matrix with the fault-injection
// gauntlet: every seeded case is re-run under deterministic storage faults
// (blob bit rot, truncation, transient and hard spill I/O errors, poisoned
// pipeline workers) and each run must either finish bit-identical to the
// fault-free baseline or fail loudly with an error naming the step:
//
//	masc-verify -chaos -seeds 20
//
// Crash mode forks journaled child runs of this binary, SIGKILLs each one
// mid-forward, at the forward/adjoint boundary, or mid-adjoint (the trigger
// is observed from the child's own write-ahead journal), then resumes the
// torn journal in-process and gates the sensitivities bit-identical to an
// uninterrupted reference:
//
//	masc-verify -crash -seeds 4
//
// The exit status is 0 only if every case passes every check, so the
// command slots directly into CI and pre-merge gauntlets.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"masc"
	"masc/internal/obs"
	"masc/internal/verify"
)

func main() {
	// A crash-gauntlet child re-execs this binary with its run spec in the
	// environment; it must route straight into the journaled run, before
	// flag parsing or telemetry setup.
	if verify.IsCrashChild() {
		os.Exit(verify.CrashChild())
	}
	var (
		n       = flag.Int("n", 50, "number of randomized circuits")
		seed    = flag.Int64("seed", 1, "master seed for the case generator")
		fd      = flag.Int("fd", 4, "finite-difference checks per case (0 disables the FD layer)")
		fdTol   = flag.Float64("fd-tol", 1e-6, "finite-difference relative tolerance")
		dirTol  = flag.Float64("direct-tol", 1e-4, "adjoint-vs-direct relative tolerance")
		workers = flag.Int("workers", 1, "masczip compression workers")
		depth   = flag.Int("pipeline-depth", 2, "async store queue depth")
		windows = flag.Int("adjoint-windows", 0, "chaos mode: parallel-in-time window sweeps for the reverse pass (0/1 = one sweep)")
		budget  = flag.String("mem-budget", "", "chaos mode: override the tiered-store scenarios' memory budget, e.g. 8K or 64K (empty = per-scenario defaults)")
		verbose = flag.Bool("v", false, "log every case")

		chaos      = flag.Bool("chaos", false, "run the fault-injection gauntlet instead of the differential matrix")
		crash      = flag.Bool("crash", false, "run the crash-resume gauntlet: fork, SIGKILL mid-run, resume, gate bit-identity")
		chaosSeeds = flag.Int("seeds", 20, "chaos/crash mode: number of seeded cases (each runs every scenario)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address during the fleet run")
		maniPath    = flag.String("manifest", "", "write a JSON manifest of the fleet result to this file")
		hold        = flag.Duration("hold", 0, "keep the metrics endpoint alive this long after the fleet finishes")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	var srv *obs.Server
	if *metricsAddr != "" {
		var err error
		srv, err = obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "masc-verify:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry: serving http://%s/metrics\n", srv.Addr)
	}

	opt := verify.Options{
		Workers:        *workers,
		PipelineDepth:  *depth,
		AdjointWindows: *windows,
		FDChecks:       *fd,
		FDTol:          *fdTol,
		DirectTol:      *dirTol,
	}
	if *budget != "" {
		b, err := masc.ParseByteSize(*budget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "masc-verify: -mem-budget:", err)
			os.Exit(2)
		}
		opt.MemBudgetBytes = b
	}
	if *verbose {
		opt.Logf = func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		}
	}

	if *chaos {
		runChaos(*chaosSeeds, *seed, opt, reg, *maniPath, *hold, srv)
		return
	}
	if *crash {
		runCrash(*chaosSeeds, *seed, opt, reg, *maniPath)
		return
	}

	start := time.Now()
	cases := verify.Cases(*n, *seed)
	fr := verify.Fleet(cases, opt)

	reg.Gauge("masc_verify_cases", "Randomized circuits pushed through the fleet.").Set(float64(len(cases)))
	reg.Gauge("masc_verify_failed", "Cases with at least one failing check.").Set(float64(fr.Failed))
	reg.Gauge("masc_verify_max_direct_rel_err", "Worst adjoint-vs-direct relative error.").Set(fr.MaxDirectErr)
	reg.Gauge("masc_verify_max_fd_rel_err", "Worst finite-difference relative error.").Set(fr.MaxFDErr)

	fmt.Printf("masc-verify: %d cases, seed %d: %d passed, %d failed (%.1fs)\n",
		len(cases), *seed, len(cases)-fr.Failed, fr.Failed, time.Since(start).Seconds())
	fmt.Printf("  layers: dense oracle vs recompute/sync/async (bitwise), store fetch sweep (bitwise),\n")
	fmt.Printf("          direct method (max rel err %.3g), finite differences (%d checked, %d skipped, max rel err %.3g)\n",
		fr.MaxDirectErr, fr.FDChecked, fr.FDSkipped, fr.MaxFDErr)
	if *maniPath != "" {
		man := obs.NewManifest("masc-verify")
		man.Set("n", *n).
			Set("seed", *seed).
			Set("fd_checks", *fd).
			Set("fd_tol", *fdTol).
			Set("direct_tol", *dirTol).
			Set("workers", *workers).
			Set("pipeline_depth", *depth)
		man.Section("fleet", map[string]any{
			"cases":          len(cases),
			"failed":         fr.Failed,
			"fd_checked":     fr.FDChecked,
			"fd_skipped":     fr.FDSkipped,
			"max_direct_err": fr.MaxDirectErr,
			"max_fd_err":     fr.MaxFDErr,
			"seconds":        time.Since(start).Seconds(),
		})
		man.AttachMetrics(reg)
		if err := man.Write(*maniPath); err != nil {
			fmt.Fprintln(os.Stderr, "masc-verify:", err)
			os.Exit(1)
		}
		fmt.Printf("manifest written to %s\n", *maniPath)
	}
	if *hold > 0 && srv != nil {
		fmt.Printf("holding metrics endpoint http://%s/metrics for %v\n", srv.Addr, *hold)
		time.Sleep(*hold)
	}
	if !fr.OK() {
		for _, rep := range fr.Reports {
			for _, f := range rep.Failures {
				fmt.Printf("  FAIL %s: %s\n", rep.Case.Name(), f)
			}
		}
		os.Exit(1)
	}
}

// runChaos executes the fault-injection gauntlet and reports the outcome
// distribution. Exit is nonzero on any contract violation: a run that
// finished with numbers differing from the fault-free baseline (silent
// corruption) or failed with an undiagnosable error.
func runChaos(seeds int, seed int64, opt verify.Options, reg *obs.Registry, maniPath string, hold time.Duration, srv *obs.Server) {
	start := time.Now()
	cr := verify.ChaosFleet(seeds, seed, opt)

	reg.Gauge("masc_chaos_runs", "Fault-injected pipeline runs.").Set(float64(len(cr.Reports)))
	reg.Gauge("masc_chaos_failed", "Chaos contract violations.").Set(float64(cr.Failed))

	fmt.Printf("masc-verify -chaos: %d seeds × %d scenarios = %d runs, seed %d (%.1fs)\n",
		seeds, len(cr.Reports)/max(seeds, 1), len(cr.Reports), seed, time.Since(start).Seconds())
	for _, oc := range []verify.ChaosOutcome{
		verify.OutcomeDegraded, verify.OutcomeAbsorbed, verify.OutcomeFailedLoud,
		verify.OutcomeClean, verify.OutcomeSilent, verify.OutcomeOpaque,
	} {
		if n := cr.Counts[oc]; n > 0 {
			fmt.Printf("  %-18s %d\n", string(oc), n)
		}
	}
	if maniPath != "" {
		man := obs.NewManifest("masc-verify-chaos")
		man.Set("seeds", seeds).Set("seed", seed)
		counts := map[string]any{}
		for oc, n := range cr.Counts {
			counts[string(oc)] = n
		}
		counts["failed"] = cr.Failed
		counts["seconds"] = time.Since(start).Seconds()
		man.Section("chaos", counts)
		man.AttachMetrics(reg)
		if err := man.Write(maniPath); err != nil {
			fmt.Fprintln(os.Stderr, "masc-verify:", err)
			os.Exit(1)
		}
		fmt.Printf("manifest written to %s\n", maniPath)
	}
	if hold > 0 && srv != nil {
		fmt.Printf("holding metrics endpoint http://%s/metrics for %v\n", srv.Addr, hold)
		time.Sleep(hold)
	}
	if !cr.OK() {
		for _, r := range cr.Reports {
			if r.Bad() {
				fmt.Printf("  FAIL %s %s: %s: %s\n", r.Case.Name(), r.Scenario, r.Outcome, r.Detail)
			}
		}
		os.Exit(1)
	}
}

// runCrash executes the crash-resume gauntlet: every seeded case is forked
// as a journaled child of this binary, killed at a scenario-specific point,
// and its torn journal resumed in-process. Exit is nonzero if any resumed
// run is not bit-identical to the uninterrupted reference.
func runCrash(seeds int, seed int64, opt verify.Options, reg *obs.Registry, maniPath string) {
	start := time.Now()
	cr := verify.CrashFleet(seeds, seed, opt, nil)

	reg.Gauge("masc_crash_runs", "Forked kill-and-resume runs.").Set(float64(len(cr.Reports)))
	reg.Gauge("masc_crash_killed", "Runs where the SIGKILL landed mid-run.").Set(float64(cr.Killed))
	reg.Gauge("masc_crash_failed", "Runs whose resume was not bit-identical.").Set(float64(cr.Failed))

	fmt.Printf("masc-verify -crash: %d runs, seed %d: %d killed mid-run, %d failed (%.1fs)\n",
		len(cr.Reports), seed, cr.Killed, cr.Failed, time.Since(start).Seconds())
	if maniPath != "" {
		man := obs.NewManifest("masc-verify-crash")
		man.Set("seeds", seeds).Set("seed", seed)
		man.Section("crash", map[string]any{
			"runs":    len(cr.Reports),
			"killed":  cr.Killed,
			"failed":  cr.Failed,
			"seconds": time.Since(start).Seconds(),
		})
		man.AttachMetrics(reg)
		if err := man.Write(maniPath); err != nil {
			fmt.Fprintln(os.Stderr, "masc-verify:", err)
			os.Exit(1)
		}
		fmt.Printf("manifest written to %s\n", maniPath)
	}
	if !cr.OK() {
		for _, r := range cr.Reports {
			for _, f := range r.Failures {
				name := "?"
				if r.Case != nil {
					name = r.Case.Name()
				}
				fmt.Printf("  FAIL %s %s: %s\n", name, r.Scenario, f)
			}
		}
		os.Exit(1)
	}
}
