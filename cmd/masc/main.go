// Command masc runs a SPICE-subset netlist through the full MASC pipeline:
// transient analysis with Jacobian-tensor capture, then adjoint sensitivity
// analysis of every .obj objective with respect to every device parameter.
//
//	masc -netlist lowpass.sp -storage masc -workers 4
//
// The storage flag selects the Jacobian strategy the paper compares:
// recompute (Xyce-style), memory, disk, masc, masc+markov — plus auto,
// which trials the codec menu on the first captured steps and commits the
// run to the best lossless codec by bytes saved per second.
//
// Crash durability: -journal run.wal checkpoints every accepted step into a
// write-ahead journal; after a crash, kill, or -deadline expiry the same
// command with -resume continues from the last checkpoint and produces
// bit-identical sensitivities. A journal that already finished returns its
// recorded result without replaying anything.
//
// Telemetry (all optional, all near-zero cost when off):
//
//	-metrics-addr :9090   serve /metrics, /debug/vars, /debug/pprof,
//	                      /debug/spans (span tree) and /events (live SSE)
//	-trace run.jsonl      per-timestep JSONL event trace
//	-span-trace run.trace hierarchical span tree as Chrome trace-event JSON
//	                      (load in Perfetto / chrome://tracing)
//	-span-jsonl spans.jsonl   span tree as one JSON object per line
//	-manifest run.json    one-document run manifest (config + stats)
//	-hold 30s             keep the metrics endpoint up after the run
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"sync/atomic"
	"syscall"
	"time"

	"masc"
)

// cli bundles the parsed command-line configuration.
type cli struct {
	path, storage        string
	workers, depth, top  int
	adjWorkers           int
	adjWindows           int
	async                bool
	diskBps              float64
	memBudget            string
	memBudgetBytes       int64
	csvPath              string
	metricsAddr          string
	tracePath, maniPath  string
	spanTrace, spanJSONL string
	hold                 time.Duration
	journal              string
	journalFsync         int
	resume               bool
	deadline             time.Duration
}

func main() {
	var c cli
	flag.StringVar(&c.path, "netlist", "", "netlist file (required)")
	flag.StringVar(&c.storage, "storage", "masc", "jacobian storage: recompute|memory|disk|masc|masc+markov|auto (auto trials the codec menu on the first steps and commits the best)")
	flag.IntVar(&c.workers, "workers", 1, "parallel compressor workers")
	flag.IntVar(&c.adjWorkers, "adjoint-workers", 1, "reverse-sweep workers (shards dF/dp + overlaps fetches; results are bit-identical for any count)")
	flag.IntVar(&c.adjWindows, "adjoint-windows", 0, "parallel-in-time window sweeps: N>1 concurrent windows, -1 auto-sizes from CPUs and step count, 0/1 one sweep (results are bit-identical for any value)")
	flag.BoolVar(&c.async, "async", false, "pipeline MASC compression on a background worker (overlaps with the solve)")
	flag.IntVar(&c.depth, "pipeline-depth", 2, "async mode: max timesteps the solver may run ahead of the compressor")
	flag.Float64Var(&c.diskBps, "disk-bps", 0, "simulated disk bandwidth in bytes/s (0 = unthrottled)")
	flag.StringVar(&c.memBudget, "mem-budget", "", "hard cap on resident Jacobian bytes, e.g. 64M or 512K (tiered store: hot RAM -> compressed RAM -> disk -> recompute; results stay bit-identical; empty = unlimited)")
	flag.IntVar(&c.top, "top", 12, "print the top-N sensitivities per objective")
	flag.StringVar(&c.csvPath, "csv", "", "write .print waveforms to this CSV file")
	flag.StringVar(&c.metricsAddr, "metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090)")
	flag.StringVar(&c.tracePath, "trace", "", "write a per-timestep JSONL event trace to this file")
	flag.StringVar(&c.spanTrace, "span-trace", "", "write the hierarchical span tree as Chrome trace-event JSON to this file (Perfetto-loadable)")
	flag.StringVar(&c.spanJSONL, "span-jsonl", "", "write the span tree as JSONL (one span object per line) to this file")
	flag.StringVar(&c.maniPath, "manifest", "", "write a JSON run manifest (config + aggregate stats) to this file")
	flag.DurationVar(&c.hold, "hold", 0, "keep the metrics endpoint alive this long after the run finishes")
	flag.StringVar(&c.journal, "journal", "", "write-ahead run journal: checkpoints every accepted step so a killed run resumes bit-identically with -resume")
	flag.IntVar(&c.journalFsync, "journal-fsync", 0, "journal checkpoints per fsync (0 = default cadence; 1 = fsync every step)")
	flag.BoolVar(&c.resume, "resume", false, "resume the run recorded in -journal (the journal supplies storage/windows/solver knobs; the netlist must hash identically)")
	flag.DurationVar(&c.deadline, "deadline", 0, "abort the run after this wall-clock budget (a journaled run interrupted this way stays resumable)")
	flag.Parse()
	if c.path == "" {
		fmt.Fprintln(os.Stderr, "masc: -netlist is required")
		flag.Usage()
		os.Exit(2)
	}
	if c.resume && c.journal == "" {
		fmt.Fprintln(os.Stderr, "masc: -resume requires -journal")
		os.Exit(2)
	}
	if c.memBudget != "" {
		b, err := masc.ParseByteSize(c.memBudget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "masc: -mem-budget:", err)
			os.Exit(2)
		}
		c.memBudgetBytes = b
	}
	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "masc:", err)
		os.Exit(1)
	}
}

func run(c cli) error {
	f, err := os.Open(c.path)
	if err != nil {
		return err
	}
	defer f.Close()
	deck, err := masc.ParseNetlist(f)
	if err != nil {
		return err
	}
	if !deck.HasTran {
		return fmt.Errorf("netlist has no .tran card")
	}
	if len(deck.Objectives) == 0 {
		return fmt.Errorf("netlist has no .obj card")
	}
	fmt.Printf("%s\n%s\n", deck.Title, deck.Ckt)

	// Telemetry: a registry whenever anything will consume it, a tracer
	// only when -trace names a file, a span recorder when span export or
	// the HTTP endpoint wants one, and an SSE broadcaster with the server.
	var ob *masc.Observer
	var reg *masc.Registry
	spansOn := c.spanTrace != "" || c.spanJSONL != "" || c.metricsAddr != ""
	telemetry := c.metricsAddr != "" || c.tracePath != "" || c.maniPath != "" || spansOn
	if telemetry {
		reg = masc.NewRegistry()
		ob = &masc.Observer{Reg: reg}
		if c.tracePath != "" {
			tr, err := masc.OpenTrace(c.tracePath)
			if err != nil {
				return err
			}
			defer tr.Close()
			ob.Trace = tr
		}
		if spansOn {
			ob.Spans = masc.NewSpanRecorder(0)
		}
	}
	var srv *masc.MetricsServer
	var bc *masc.Broadcaster
	if c.metricsAddr != "" {
		// Live streaming: completed spans and trace events tee into the
		// /events SSE broadcaster as they happen. Publish copies the frame,
		// so the sink can reuse one scratch buffer.
		bc = masc.NewBroadcaster()
		ob.Events = bc
		defer bc.Close()
		var buf []byte
		ob.Spans.SetSink(func(r *masc.SpanRecord) {
			buf = masc.AppendSpanJSON(buf[:0], r)
			bc.Publish("span", buf)
		})
		if ob.Trace != nil {
			ob.Trace.SetBroadcast(bc)
		}
		srv, err = masc.ServeObserver(c.metricsAddr, ob)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry: serving http://%s/metrics (spans: /debug/spans, live: /events)\n", srv.Addr)
	}

	// Graceful shutdown: the first SIGINT/SIGTERM asks the transient loop to
	// stop at the next step boundary (no half-written tensor step); a second
	// signal falls through to the default handler and kills the process.
	var stopped atomic.Bool
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		if _, ok := <-sigCh; ok {
			fmt.Fprintln(os.Stderr, "masc: interrupt — stopping at the next step boundary")
			stopped.Store(true)
			signal.Stop(sigCh)
		}
	}()

	simOpt := masc.SimOptions{
		TStep:             deck.Tran.TStep,
		TStop:             deck.Tran.TStop,
		Storage:           masc.Storage(c.storage),
		Workers:           c.workers,
		AdjointWorkers:    c.adjWorkers,
		AdjointWindows:    c.adjWindows,
		Async:             c.async,
		PipelineDepth:     c.depth,
		DiskBytesPerSec:   c.diskBps,
		MemBudgetBytes:    c.memBudgetBytes,
		Obs:               ob,
		CollectCodecStats: telemetry,
		Journal:           c.journal,
		JournalFsyncEvery: c.journalFsync,
		Deadline:          c.deadline,
	}
	simOpt.Transient.Stop = stopped.Load

	var run *masc.Run
	if c.resume {
		// The journal's config record replays the original run's shape;
		// simOpt contributes only the runtime-side knobs (telemetry,
		// deadline, stop hook).
		run, err = masc.Resume(deck.Ckt, c.journal, simOpt)
	} else {
		run, err = masc.Simulate(deck.Ckt, simOpt, deck.Objectives, nil)
	}
	if err != nil {
		if errors.Is(err, masc.ErrInterrupted) {
			// Flush and close every telemetry sink so the partial run is
			// diagnosable, then report the interruption as a failure
			// (nonzero exit). Order matters: trace flush, span export and
			// broadcaster close all precede the "interrupted" manifest, so
			// a manifest on disk implies the other artifacts are complete.
			if ob != nil && ob.Trace != nil {
				if ferr := ob.Trace.Flush(); ferr != nil {
					fmt.Fprintln(os.Stderr, "masc: trace flush:", ferr)
				}
			}
			if serr := exportSpans(c, ob); serr != nil {
				fmt.Fprintln(os.Stderr, "masc: span export:", serr)
			}
			bc.Close()
			if c.maniPath != "" {
				if merr := writeManifest(c, deck, nil, reg, "interrupted"); merr != nil {
					fmt.Fprintln(os.Stderr, "masc: manifest:", merr)
				} else {
					fmt.Printf("manifest written to %s\n", c.maniPath)
				}
			}
		}
		return err
	}
	// All trace events and spans are emitted inside Simulate; flush and
	// export now so the files are complete even if the process is killed
	// during -hold. The broadcaster stays open through -hold so /events
	// clients keep their stream.
	if ob != nil && ob.Trace != nil {
		if err := ob.Trace.Flush(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if err := exportSpans(c, ob); err != nil {
		return err
	}

	if run.Tran == nil {
		// -resume against a journal that already holds the done record:
		// the finished sensitivities come straight from the journal.
		fmt.Println("resume: journal already complete — sensitivities recovered without replay")
	} else {
		fmt.Printf("transient: %d steps, %d newton iterations, %d (re)factorizations\n",
			run.Tran.Steps(), run.Tran.Stats.NewtonIters,
			run.Tran.Stats.Factorizations+run.Tran.Stats.Refactorizations)
		fmt.Printf("sensitivity: total %v (fetch %v, solve %v, ∂F/∂p %v)\n",
			run.Sens.Timing.Total, run.Sens.Timing.Fetch,
			run.Sens.Timing.FactorSolve, run.Sens.Timing.ParamEval)
	}
	if run.Tran != nil && run.Storage != masc.StorageRecompute {
		st := run.TensorStats
		fmt.Printf("tensor: raw %d B, stored %d B (CR %.2f), peak resident %d B\n",
			st.RawBytes, st.StoredBytes,
			float64(st.RawBytes)/float64(st.StoredBytes), st.PeakResident)
		if st.BudgetBytes > 0 {
			fmt.Printf("tiers: budget %d B — %d hot / %d compressed / %d disk / %d dropped steps, %d demotions, %d promotions, %d recomputes\n",
				st.BudgetBytes, st.TierHotSteps, st.TierCompressedSteps,
				st.TierDiskSteps, st.TierDroppedSteps,
				st.TierDemotions, st.TierPromotions, st.TierRecomputes)
		}
		if run.SelectedCodec != "" {
			fmt.Printf("codec: auto selected %q over", run.SelectedCodec)
			for _, t := range run.CodecTrials {
				fmt.Printf(" %s(CR %.2f, %.0f MB/s saved)", t.Name, t.Ratio(), t.Score/1e6)
			}
			fmt.Println()
		}
		if c.async && (run.Storage == masc.StorageMASC || run.Storage == masc.StorageMASCMarkov || run.Storage == masc.StorageAuto) {
			fmt.Printf("pipeline: compress %v moved off the solver thread, %v leaked back as Put stalls\n",
				st.CompressTime, st.StallTime)
		}
	}

	if c.csvPath != "" {
		if run.Tran == nil {
			fmt.Fprintln(os.Stderr, "masc: -csv skipped: a completed journal holds no trajectory to replay")
		} else {
			if err := writeCSV(c.csvPath, deck, run.Tran); err != nil {
				return err
			}
			fmt.Printf("waveforms written to %s\n", c.csvPath)
		}
	}

	if c.maniPath != "" {
		if err := writeManifest(c, deck, run, reg, "ok"); err != nil {
			return err
		}
		fmt.Printf("manifest written to %s\n", c.maniPath)
	}

	params := deck.Ckt.Params()
	for o, obj := range deck.Objectives {
		fmt.Printf("\nobjective %s — top sensitivities:\n", obj.Name)
		type pv struct {
			name string
			v    float64
		}
		list := make([]pv, len(params))
		for k := range params {
			list[k] = pv{params[k].Name, run.Sens.DOdp[o][k]}
		}
		sort.Slice(list, func(i, j int) bool { return abs(list[i].v) > abs(list[j].v) })
		n := c.top
		if n > len(list) {
			n = len(list)
		}
		for _, e := range list[:n] {
			fmt.Printf("  dO/d(%-16s) = %+.6e\n", e.name, e.v)
		}
	}

	if c.hold > 0 && srv != nil {
		fmt.Printf("holding metrics endpoint http://%s/metrics for %v\n", srv.Addr, c.hold)
		time.Sleep(c.hold)
	}
	return nil
}

// writeManifest serializes the run's configuration and every layer's
// aggregate statistics as one JSON document. The tensor section is the
// store's Stats() verbatim, so its fields match the in-process values
// bit-for-bit. run may be nil (e.g. an interrupted simulation): the
// manifest then records the configuration, status, and whatever metrics
// accumulated before the stop.
func writeManifest(c cli, deck *masc.Deck, run *masc.Run, reg *masc.Registry, status string) error {
	man := masc.NewManifest("masc")
	man.Set("netlist", c.path).
		Set("status", status).
		Set("storage", c.storage).
		Set("workers", c.workers).
		Set("adjoint_workers", c.adjWorkers).
		Set("adjoint_windows", c.adjWindows).
		Set("async", c.async).
		Set("pipeline_depth", c.depth).
		Set("disk_bps", c.diskBps).
		Set("mem_budget_bytes", c.memBudgetBytes).
		Set("tstep", deck.Tran.TStep).
		Set("tstop", deck.Tran.TStop)
	if run != nil {
		man.Set("storage", string(run.Storage))
		if run.Tran != nil {
			man.Section("transient", run.Tran.Stats)
			if run.Storage != masc.StorageRecompute {
				man.Section("tensor", run.TensorStats)
			}
		}
		man.Section("sensitivity_timing", run.Sens.Timing)
		man.Set("adjoint_windows_ran", run.Sens.Windows)
		if run.SelectedCodec != "" {
			man.Set("selected_codec", run.SelectedCodec)
			man.Section("codec_trials", run.CodecTrials)
		}
		if run.HasCodecStats {
			man.Section("codec_j", run.CodecStatsJ)
			man.Section("codec_c", run.CodecStatsC)
			man.Section("codec_summary", map[string]any{
				"markov_hit_rate_j": run.CodecStatsJ.MarkovHitRate(),
				"markov_hit_rate_c": run.CodecStatsC.MarkovHitRate(),
			})
		}
	}
	man.AttachMetrics(reg)
	return man.Write(c.maniPath)
}

// exportSpans writes the recorder's span snapshot to the -span-trace
// (Chrome trace-event JSON) and -span-jsonl files. A nil observer or
// recorder, or empty paths, are no-ops.
func exportSpans(c cli, ob *masc.Observer) error {
	if ob == nil || ob.Spans == nil || (c.spanTrace == "" && c.spanJSONL == "") {
		return nil
	}
	recs := ob.Spans.Snapshot()
	write := func(path string, enc func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := enc(f); err != nil {
			f.Close()
			return fmt.Errorf("span export %s: %w", path, err)
		}
		return f.Close()
	}
	if c.spanTrace != "" {
		if err := write(c.spanTrace, func(f *os.File) error {
			return masc.WriteChromeTrace(f, recs)
		}); err != nil {
			return err
		}
		fmt.Printf("span trace written to %s (%d spans)\n", c.spanTrace, len(recs))
	}
	if c.spanJSONL != "" {
		if err := write(c.spanJSONL, func(f *os.File) error {
			return masc.WriteSpanJSONL(f, recs)
		}); err != nil {
			return err
		}
		fmt.Printf("span jsonl written to %s (%d spans)\n", c.spanJSONL, len(recs))
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// writeCSV dumps the .print columns (or every node voltage when the deck
// has no .print card) over the whole trajectory.
func writeCSV(path string, deck *masc.Deck, tr *masc.TransientResult) error {
	cols := deck.Prints
	if len(cols) == 0 {
		for i, name := range deck.Ckt.Names {
			cols = append(cols, masc.PrintVar{Name: name, Node: int32(i)})
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprint(w, "time")
	for _, c := range cols {
		fmt.Fprintf(w, ",%s", c.Name)
	}
	fmt.Fprintln(w)
	for i, tm := range tr.Times {
		fmt.Fprintf(w, "%.12g", tm)
		for _, c := range cols {
			fmt.Fprintf(w, ",%.12g", tr.States[i][c.Node])
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
