// Command masc runs a SPICE-subset netlist through the full MASC pipeline:
// transient analysis with Jacobian-tensor capture, then adjoint sensitivity
// analysis of every .obj objective with respect to every device parameter.
//
//	masc -netlist lowpass.sp -storage masc -workers 4
//
// The storage flag selects the Jacobian strategy the paper compares:
// recompute (Xyce-style), memory, disk, masc, masc+markov.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"masc"
)

func main() {
	var (
		path    = flag.String("netlist", "", "netlist file (required)")
		storage = flag.String("storage", "masc", "jacobian storage: recompute|memory|disk|masc|masc+markov")
		workers = flag.Int("workers", 1, "parallel compressor workers")
		async   = flag.Bool("async", false, "pipeline MASC compression on a background worker (overlaps with the solve)")
		depth   = flag.Int("pipeline-depth", 2, "async mode: max timesteps the solver may run ahead of the compressor")
		diskBps = flag.Float64("disk-bps", 0, "simulated disk bandwidth in bytes/s (0 = unthrottled)")
		top     = flag.Int("top", 12, "print the top-N sensitivities per objective")
		csvPath = flag.String("csv", "", "write .print waveforms to this CSV file")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "masc: -netlist is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*path, *storage, *workers, *async, *depth, *diskBps, *top, *csvPath); err != nil {
		fmt.Fprintln(os.Stderr, "masc:", err)
		os.Exit(1)
	}
}

func run(path, storage string, workers int, async bool, depth int, diskBps float64, top int, csvPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	deck, err := masc.ParseNetlist(f)
	if err != nil {
		return err
	}
	if !deck.HasTran {
		return fmt.Errorf("netlist has no .tran card")
	}
	if len(deck.Objectives) == 0 {
		return fmt.Errorf("netlist has no .obj card")
	}
	fmt.Printf("%s\n%s\n", deck.Title, deck.Ckt)

	run, err := masc.Simulate(deck.Ckt, masc.SimOptions{
		TStep:           deck.Tran.TStep,
		TStop:           deck.Tran.TStop,
		Storage:         masc.Storage(storage),
		Workers:         workers,
		Async:           async,
		PipelineDepth:   depth,
		DiskBytesPerSec: diskBps,
	}, deck.Objectives, nil)
	if err != nil {
		return err
	}

	fmt.Printf("transient: %d steps, %d newton iterations, %d (re)factorizations\n",
		run.Tran.Steps(), run.Tran.Stats.NewtonIters,
		run.Tran.Stats.Factorizations+run.Tran.Stats.Refactorizations)
	fmt.Printf("sensitivity: total %v (fetch %v, solve %v, ∂F/∂p %v)\n",
		run.Sens.Timing.Total, run.Sens.Timing.Fetch,
		run.Sens.Timing.FactorSolve, run.Sens.Timing.ParamEval)
	if run.Storage != masc.StorageRecompute {
		st := run.TensorStats
		fmt.Printf("tensor: raw %d B, stored %d B (CR %.2f), peak resident %d B\n",
			st.RawBytes, st.StoredBytes,
			float64(st.RawBytes)/float64(st.StoredBytes), st.PeakResident)
		if async && (run.Storage == masc.StorageMASC || run.Storage == masc.StorageMASCMarkov) {
			fmt.Printf("pipeline: compress %v moved off the solver thread, %v leaked back as Put stalls\n",
				st.CompressTime, st.StallTime)
		}
	}

	if csvPath != "" {
		if err := writeCSV(csvPath, deck, run.Tran); err != nil {
			return err
		}
		fmt.Printf("waveforms written to %s\n", csvPath)
	}

	params := deck.Ckt.Params()
	for o, obj := range deck.Objectives {
		fmt.Printf("\nobjective %s — top sensitivities:\n", obj.Name)
		type pv struct {
			name string
			v    float64
		}
		list := make([]pv, len(params))
		for k := range params {
			list[k] = pv{params[k].Name, run.Sens.DOdp[o][k]}
		}
		sort.Slice(list, func(i, j int) bool { return abs(list[i].v) > abs(list[j].v) })
		n := top
		if n > len(list) {
			n = len(list)
		}
		for _, e := range list[:n] {
			fmt.Printf("  dO/d(%-16s) = %+.6e\n", e.name, e.v)
		}
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// writeCSV dumps the .print columns (or every node voltage when the deck
// has no .print card) over the whole trajectory.
func writeCSV(path string, deck *masc.Deck, tr *masc.TransientResult) error {
	cols := deck.Prints
	if len(cols) == 0 {
		for i, name := range deck.Ckt.Names {
			cols = append(cols, masc.PrintVar{Name: name, Node: int32(i)})
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprint(w, "time")
	for _, c := range cols {
		fmt.Fprintf(w, ",%s", c.Name)
	}
	fmt.Fprintln(w)
	for i, tm := range tr.Times {
		fmt.Fprintf(w, "%.12g", tm)
		for _, c := range cols {
			fmt.Fprintf(w, ",%.12g", tr.States[i][c.Node])
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
