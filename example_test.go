package masc_test

import (
	"fmt"
	"log"
	"math"
	"strings"

	"masc"
)

// ExampleSimulate runs the full pipeline — transient analysis with a
// MASC-compressed Jacobian tensor, then adjoint sensitivities — on a
// two-element lowpass.
func ExampleSimulate() {
	b := masc.NewBuilder()
	b.AddVSource("vin", "in", "0", masc.DC(1))
	b.AddResistor("r1", "in", "out", 1e3)
	b.AddCapacitor("c1", "out", "0", 1e-6)
	ckt, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	out, _ := b.NodeIndex("out")
	run, err := masc.Simulate(ckt, masc.SimOptions{
		TStep: 1e-5, TStop: 1e-3, Storage: masc.StorageMASC,
	}, []masc.Objective{{Name: "v(out)", Node: out, Weight: 1}}, nil)
	if err != nil {
		log.Fatal(err)
	}
	// With a DC source the output is already settled; the source-scale
	// sensitivity is exactly the DC gain of 1.
	fmt.Printf("steps: %d\n", run.Tran.Steps())
	for k, p := range ckt.Params() {
		if p.Name == "vin.scale" {
			fmt.Printf("dO/d(vin.scale) = %.3f\n", run.Sens.DOdp[0][k])
		}
	}
	// Output:
	// steps: 100
	// dO/d(vin.scale) = 1.000
}

// ExampleParseNetlist drives the same pipeline from SPICE text.
func ExampleParseNetlist() {
	deck, err := masc.ParseNetlist(strings.NewReader(`divider
V1 top 0 DC 10
R1 top mid 1k
R2 mid 0 3k
.tran 1u 50u
.obj v(mid)
`))
	if err != nil {
		log.Fatal(err)
	}
	run, err := masc.Simulate(deck.Ckt, masc.SimOptions{
		TStep: deck.Tran.TStep, TStop: deck.Tran.TStop, Storage: masc.StorageRecompute,
	}, deck.Objectives, nil)
	if err != nil {
		log.Fatal(err)
	}
	final := run.Tran.States[len(run.Tran.States)-1][deck.Objectives[0].Node]
	fmt.Printf("v(mid) = %.2f V\n", final)
	// Output:
	// v(mid) = 7.50 V
}

// ExampleRunTransient runs the transient front half alone — useful when
// only waveforms are needed, or as the input to DirectSensitivities.
func ExampleRunTransient() {
	b := masc.NewBuilder()
	b.AddVSource("v1", "top", "0", masc.DC(10))
	b.AddResistor("r1", "top", "mid", 1e3)
	b.AddResistor("r2", "mid", "0", 3e3)
	ckt, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	tr, err := masc.RunTransient(ckt, masc.TransientOptions{TStep: 1e-6, TStop: 2e-5})
	if err != nil {
		log.Fatal(err)
	}
	mid, _ := b.NodeIndex("mid")
	fmt.Printf("steps: %d, v(mid) = %.2f V\n", tr.Steps(), tr.States[tr.Steps()][mid])
	// Output:
	// steps: 20, v(mid) = 7.50 V
}

// ExampleDirectSensitivities cross-checks the adjoint with the forward
// (direct) method: both differentiate the same discrete trajectory, so on
// this divider the gain sensitivity matches to machine precision.
func ExampleDirectSensitivities() {
	b := masc.NewBuilder()
	b.AddVSource("v1", "top", "0", masc.DC(10))
	b.AddResistor("r1", "top", "mid", 1e3)
	b.AddResistor("r2", "mid", "0", 3e3)
	ckt, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	mid, _ := b.NodeIndex("mid")
	objs := []masc.Objective{{Name: "v(mid)", Node: mid, Weight: 1}}
	tr, err := masc.RunTransient(ckt, masc.TransientOptions{TStep: 1e-6, TStop: 2e-5})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := masc.DirectSensitivities(ckt, tr, objs, nil)
	if err != nil {
		log.Fatal(err)
	}
	for k, p := range ckt.Params() {
		if p.Name == "v1.scale" {
			fmt.Printf("dv(mid)/d(v1.scale) = %.3f\n", dir.DOdp[0][k])
		}
	}
	// Output:
	// dv(mid)/d(v1.scale) = 7.500
}

// ExampleSimulate_storageModes shows the property the verification harness
// enforces fleet-wide: the compressed tensor store is lossless, so the
// sensitivities match the dense in-RAM oracle bit for bit.
func ExampleSimulate_storageModes() {
	run := func(storage masc.Storage) []float64 {
		b := masc.NewBuilder()
		b.AddVSource("vin", "in", "0", masc.Sin{VA: 1, Freq: 1e4})
		b.AddResistor("r1", "in", "out", 1e3)
		b.AddCapacitor("c1", "out", "0", 1e-7)
		ckt, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		out, _ := b.NodeIndex("out")
		r, err := masc.Simulate(ckt, masc.SimOptions{
			TStep: 1e-6, TStop: 1e-4, Storage: storage,
		}, []masc.Objective{{Name: "v(out)", Node: out, Weight: 1}}, nil)
		if err != nil {
			log.Fatal(err)
		}
		return r.Sens.DOdp[0]
	}
	dense := run(masc.StorageMemory)
	compressed := run(masc.StorageMASC)
	identical := len(dense) == len(compressed)
	for k := range dense {
		identical = identical && math.Float64bits(dense[k]) == math.Float64bits(compressed[k])
	}
	fmt.Printf("params: %d, bit-identical to dense oracle: %v\n", len(dense), identical)
	// Output:
	// params: 3, bit-identical to dense oracle: true
}
