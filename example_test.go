package masc_test

import (
	"fmt"
	"log"
	"strings"

	"masc"
)

// ExampleSimulate runs the full pipeline — transient analysis with a
// MASC-compressed Jacobian tensor, then adjoint sensitivities — on a
// two-element lowpass.
func ExampleSimulate() {
	b := masc.NewBuilder()
	b.AddVSource("vin", "in", "0", masc.DC(1))
	b.AddResistor("r1", "in", "out", 1e3)
	b.AddCapacitor("c1", "out", "0", 1e-6)
	ckt, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	out, _ := b.NodeIndex("out")
	run, err := masc.Simulate(ckt, masc.SimOptions{
		TStep: 1e-5, TStop: 1e-3, Storage: masc.StorageMASC,
	}, []masc.Objective{{Name: "v(out)", Node: out, Weight: 1}}, nil)
	if err != nil {
		log.Fatal(err)
	}
	// With a DC source the output is already settled; the source-scale
	// sensitivity is exactly the DC gain of 1.
	fmt.Printf("steps: %d\n", run.Tran.Steps())
	for k, p := range ckt.Params() {
		if p.Name == "vin.scale" {
			fmt.Printf("dO/d(vin.scale) = %.3f\n", run.Sens.DOdp[0][k])
		}
	}
	// Output:
	// steps: 100
	// dO/d(vin.scale) = 1.000
}

// ExampleParseNetlist drives the same pipeline from SPICE text.
func ExampleParseNetlist() {
	deck, err := masc.ParseNetlist(strings.NewReader(`divider
V1 top 0 DC 10
R1 top mid 1k
R2 mid 0 3k
.tran 1u 50u
.obj v(mid)
`))
	if err != nil {
		log.Fatal(err)
	}
	run, err := masc.Simulate(deck.Ckt, masc.SimOptions{
		TStep: deck.Tran.TStep, TStop: deck.Tran.TStop, Storage: masc.StorageRecompute,
	}, deck.Objectives, nil)
	if err != nil {
		log.Fatal(err)
	}
	final := run.Tran.States[len(run.Tran.States)-1][deck.Objectives[0].Node]
	fmt.Printf("v(mid) = %.2f V\n", final)
	// Output:
	// v(mid) = 7.50 V
}
